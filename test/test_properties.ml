(** Whole-system property tests over randomly generated queries.

    A generator produces random {e valid} single-branch queries
    (front filter → map → optional distinct → reduce → threshold →
    trailing map); properties check that every one of them
    - passes validation,
    - compiles under every optimization combination with the structural
      invariants intact,
    - executes on the engine with exactly the reference evaluator's
      recall (sketches never miss), and
    - produces the same report set when sliced for CQE as when run on a
      single switch. *)

open Newton_packet
open Newton_query
open Newton_runtime

(* ---------------- random query generation ---------------- *)

let key_fields = [| Field.Src_ip; Field.Dst_ip; Field.Src_port; Field.Dst_port |]

let gen_query =
  QCheck.Gen.(
    let* use_filter = bool in
    let* proto = oneofl [ 6; 17 ] in
    let* nkeys = int_range 1 2 in
    let* key_idx = int_range 0 (Array.length key_fields - 1) in
    let keys =
      List.init nkeys (fun i ->
          Ast.key key_fields.((key_idx + i) mod Array.length key_fields))
    in
    let* use_distinct = bool in
    let* agg =
      oneofl [ Ast.Count; Ast.Sum_field Field.Pkt_len; Ast.Max_field Field.Pkt_len ]
    in
    let* th = int_range 1 30 in
    let reduce_keys = [ List.hd keys ] in
    let prims =
      (if use_filter then [ Ast.Filter [ Ast.field_is Field.Proto proto ] ] else [])
      @ [ Ast.Map keys ]
      @ (if use_distinct then [ Ast.Distinct keys ] else [])
      @ [ Ast.Map reduce_keys;
          Ast.Reduce { keys = reduce_keys; agg };
          Ast.Filter [ Ast.result_gt th ];
          Ast.Map reduce_keys ]
    in
    return (Ast.chain ~id:42 ~name:"random" ~description:"generated" prims))

let arb_query = QCheck.make ~print:Ast.to_string gen_query

(* Small deterministic traffic so properties run fast; wide registers so
   sketch collisions cannot cause false negatives at this scale. *)
let test_trace =
  lazy
    (Newton_trace.Gen.generate ~attacks:Newton_trace.Attack.default_suite ~seed:5
       (Newton_trace.Profile.with_flows Newton_trace.Profile.caida_like 400))

let options =
  { Newton_compiler.Decompose.default_options with registers = 8192 }

let compile q = Newton_compiler.Compose.compile ~options q

(* ---------------- properties ---------------- *)

let prop_valid =
  QCheck.Test.make ~count:200 ~name:"random queries validate" arb_query
    (fun q -> Ast.validate q = [])

let prop_compile_invariants =
  QCheck.Test.make ~count:200 ~name:"random queries compile with invariants"
    QCheck.(pair arb_query (triple bool bool bool))
    (fun (q, (o1, o2, o3)) ->
      let opts = { options with opt1 = o1; opt2 = o2; opt3 = o3 } in
      let c = Newton_compiler.Compose.compile ~options:opts q in
      let s = c.Newton_compiler.Compose.stats in
      let ok_stats =
        s.Newton_compiler.Compose.modules <= s.Newton_compiler.Compose.modules_naive
        && s.Newton_compiler.Compose.stages <= s.Newton_compiler.Compose.stages_naive
        && s.Newton_compiler.Compose.modules_shared <= s.Newton_compiler.Compose.modules
      in
      (* cells unique and suite chains strictly increasing *)
      let ok_structure =
        Array.for_all
          (fun slots ->
            let cells = Hashtbl.create 16 in
            let suites = Hashtbl.create 16 in
            List.for_all
              (fun sl ->
                let cell = (sl.Newton_compiler.Ir.stage, sl.Newton_compiler.Ir.kind, sl.Newton_compiler.Ir.meta) in
                let fresh = not (Hashtbl.mem cells cell) in
                Hashtbl.replace cells cell ();
                let sk = (sl.Newton_compiler.Ir.prim, sl.Newton_compiler.Ir.suite) in
                let prev = Option.value (Hashtbl.find_opt suites sk) ~default:(-1) in
                Hashtbl.replace suites sk sl.Newton_compiler.Ir.stage;
                fresh && sl.Newton_compiler.Ir.stage > prev)
              slots)
          c.Newton_compiler.Compose.branches
      in
      ok_stats && ok_structure)

let prop_engine_matches_reference =
  QCheck.Test.make ~count:40 ~name:"random queries: engine recall = reference"
    arb_query
    (fun q ->
      let trace = Lazy.force test_trace in
      let truth = Ref_eval.evaluate q (Newton_trace.Gen.packets trace) in
      let e = Engine.create ~switch_id:0 () in
      let _ = Engine.install e (compile q) in
      Array.iter (Engine.process_packet e) (Newton_trace.Gen.packets trace);
      let a = Analyzer.score ~truth ~detected:(Engine.reports e) in
      a.Analyzer.recall >= 0.999)

let prop_cqe_slicing_equivalent =
  QCheck.Test.make ~count:40 ~name:"random queries: CQE slicing = single switch"
    QCheck.(pair arb_query (int_range 2 4))
    (fun (q, nslices) ->
      let compiled = compile q in
      let trace = Lazy.force test_trace in
      let single = Engine.create ~switch_id:0 () in
      let _ = Engine.install single compiled in
      let stages = compiled.Newton_compiler.Compose.stats.Newton_compiler.Compose.stages in
      let per = max 1 ((stages + nslices - 1) / nslices) in
      let sliced =
        List.init nslices (fun i ->
            let e = Engine.create ~switch_id:(i + 1) () in
            let lo = i * per in
            let hi = if i = nslices - 1 then max_int else (lo + per) - 1 in
            ignore (Engine.install e ~uid:1 ~stage_lo:lo ~stage_hi:hi compiled);
            e)
      in
      Array.iter
        (fun pkt ->
          Engine.process_packet single pkt;
          Cqe.process_path sliced pkt)
        (Newton_trace.Gen.packets trace);
      let keyset es =
        List.concat_map Engine.reports es
        |> List.map (fun r -> (r.Report.window, r.Report.keys))
        |> List.sort_uniq compare
      in
      keyset [ single ] = keyset sliced)

let prop_window_isolation =
  QCheck.Test.make ~count:40
    ~name:"random queries: reports never span window state" arb_query
    (fun q ->
      (* Feeding the same single-window burst twice in different windows
         yields exactly the same per-window report count. *)
      let e = Engine.create ~switch_id:0 () in
      let _ = Engine.install e (compile q) in
      let burst base_ts =
        for i = 1 to 40 do
          Engine.process_packet e
            (Packet.make ~ts:base_ts ~src_ip:i ~dst_ip:7 ~proto:6 ~src_port:99
               ~dst_port:80 ~tcp_flags:2 ~pkt_len:200 ())
        done
      in
      burst 0.01;
      let w0 = Engine.report_count e in
      burst 0.15;
      Engine.report_count e = 2 * w0)

let prop_dsl_roundtrip =
  QCheck.Test.make ~count:150 ~name:"random queries: DSL print/parse roundtrip"
    arb_query
    (fun q ->
      let q' = Parser.parse ~window:q.Ast.window (Printer.to_dsl q) in
      q'.Ast.branches = q.Ast.branches && q'.Ast.combine = q.Ast.combine)

let prop_single_failure_coverage =
  QCheck.Test.make ~count:30
    ~name:"placement covers any single-link-failure reroute"
    QCheck.(triple (int_range 1 9) (int_range 0 1000) (int_range 2 4))
    (fun (qid, link_pick, per) ->
      let topo = Newton_network.Topo.fat_tree 4 in
      let compiled =
        Newton_compiler.Compose.compile (Catalog.by_id qid)
      in
      let p =
        Newton_controller.Placement.place ~stages_per_switch:(per * 3) ~topo
          compiled
      in
      let route = Newton_network.Route.create topo in
      let links = Array.of_list (Newton_network.Topo.links topo) in
      Newton_network.Route.fail_link route links.(link_pick mod Array.length links);
      let hosts = Array.of_list (Newton_network.Topo.hosts topo) in
      (* a few host pairs; all rerouted paths must still be covered *)
      let ok = ref true in
      Array.iteri
        (fun i h1 ->
          if i < 4 then
            Array.iteri
              (fun j h2 ->
                if j < 4 && h1 <> h2 then
                  match
                    Newton_network.Route.switch_path route ~src_host:h1 ~dst_host:h2
                  with
                  | Some path ->
                      if not (Newton_controller.Placement.covers p path) then
                        ok := false
                  | None -> ())
              hosts)
        hosts;
      !ok)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_valid; prop_compile_invariants; prop_engine_matches_reference;
      prop_cqe_slicing_equivalent; prop_window_isolation;
      prop_single_failure_coverage; prop_dsl_roundtrip ]
