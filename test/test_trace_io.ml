(** Tests for trace serialization (save / load round-trips). *)

open Newton_packet
open Newton_trace

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) ("newton_" ^ name)

let test_roundtrip () =
  let trace =
    Gen.generate ~attacks:Attack.default_suite ~seed:4
      (Profile.with_flows Profile.caida_like 300)
  in
  let path = tmp "roundtrip.ntrc" in
  Trace_io.save trace path;
  let loaded = Trace_io.load path in
  checki "packet count" (Gen.length trace) (Gen.length loaded);
  Array.iteri
    (fun i p ->
      let q = (Gen.packets loaded).(i) in
      checkb "timestamp preserved" true (Packet.ts p = Packet.ts q);
      List.iter
        (fun f ->
          checki (Field.to_string f) (Packet.get p f) (Packet.get q f))
        Field.all)
    (Gen.packets trace);
  Sys.remove path

let test_loaded_trace_replays_identically () =
  let trace =
    Gen.generate ~attacks:Attack.default_suite ~seed:6
      (Profile.with_flows Profile.caida_like 400)
  in
  let path = tmp "replay.ntrc" in
  Trace_io.save trace path;
  let loaded = Trace_io.load path in
  let run t =
    let d = Newton_core.Newton.Device.create () in
    List.iter
      (fun q -> ignore (Newton_core.Newton.Device.add_query d q))
      (Newton_query.Catalog.all ());
    Newton_core.Newton.Device.process_trace d t;
    Newton_core.Newton.Device.reports d
    |> List.map Newton_query.Report.to_string
    |> List.sort compare
  in
  Alcotest.(check (list string)) "identical detections on replay" (run trace) (run loaded);
  Sys.remove path

(* Version-1 files (14-field records, before the IPv6/ICMP/tunnel
   fields existed) still load: the first 14 fields carry over in order,
   the new fields default to zero, and Ip_ver defaults to 4. *)
let test_loads_v1_files () =
  let v1_fields = List.filteri (fun i _ -> i < 14) Field.all in
  checki "v1 prefix ends at Ingress_port" (Field.index Field.Ingress_port)
    (List.length v1_fields - 1);
  let p =
    Packet.make ~ts:1.5 ~src_ip:0xC0A80101 ~dst_ip:0x0A000002
      ~proto:Field.Protocol.tcp ~src_port:443 ~dst_port:51000
      ~tcp_flags:Field.Tcp_flag.syn ~pkt_len:60 ~ingress_port:7 ()
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "NTRC";
  Buffer.add_uint8 buf 1;
  Buffer.add_uint16_le buf (String.length "legacy");
  Buffer.add_string buf "legacy";
  Buffer.add_int32_le buf 1l;
  Buffer.add_int64_le buf (Int64.bits_of_float (Packet.ts p));
  List.iter
    (fun f -> Buffer.add_int32_le buf (Int32.of_int (Packet.get p f)))
    v1_fields;
  let path = tmp "v1.ntrc" in
  let oc = open_out_bin path in
  Buffer.output_buffer oc buf;
  close_out oc;
  let loaded = Trace_io.load path in
  checki "one packet" 1 (Gen.length loaded);
  let q = (Gen.packets loaded).(0) in
  checkb "timestamp preserved" true (Packet.ts q = 1.5);
  List.iter
    (fun f -> checki (Field.to_string f) (Packet.get p f) (Packet.get q f))
    v1_fields;
  checki "ip_ver defaults to 4" 4 (Packet.get q Field.Ip_ver);
  checki "icmp_type zero" 0 (Packet.get q Field.Icmp_type);
  checki "tun_id zero" 0 (Packet.get q Field.Tun_id);
  Sys.remove path

let test_profile_name_preserved () =
  let trace = Gen.generate ~seed:7 (Profile.with_flows Profile.mawi_like 50) in
  let path = tmp "name.ntrc" in
  Trace_io.save trace path;
  let loaded = Trace_io.load path in
  Alcotest.(check string) "name carries a loaded: prefix" "loaded:mawi-like"
    (Gen.profile loaded).Profile.name;
  Sys.remove path

let test_empty_trace () =
  let path = tmp "empty.ntrc" in
  Trace_io.save (Gen.of_packets ~name:"none" [||]) path;
  checki "empty round-trips" 0 (Gen.length (Trace_io.load path));
  Sys.remove path

let expect_format_error name f =
  checkb name true (try ignore (f ()); false with Trace_io.Format_error _ -> true)

let test_rejects_bad_magic () =
  let path = tmp "badmagic.ntrc" in
  let oc = open_out_bin path in
  output_string oc "XXXX\x01";
  close_out oc;
  expect_format_error "bad magic" (fun () -> Trace_io.load path);
  Sys.remove path

let test_rejects_bad_version () =
  let path = tmp "badver.ntrc" in
  let oc = open_out_bin path in
  output_string oc "NTRC\x63";
  close_out oc;
  expect_format_error "bad version" (fun () -> Trace_io.load path);
  Sys.remove path

let test_rejects_truncated () =
  let trace = Gen.generate ~seed:8 (Profile.with_flows Profile.caida_like 40) in
  let path = tmp "trunc.ntrc" in
  Trace_io.save trace path;
  let full = In_channel.with_open_bin path In_channel.input_all in
  let oc = open_out_bin path in
  output_string oc (String.sub full 0 (String.length full / 2));
  close_out oc;
  expect_format_error "truncated data" (fun () -> Trace_io.load path);
  Sys.remove path

(* Field values at or above 2^31 must survive the round-trip: the
   on-disk format stores 32-bit words, and reassembling them with
   tagged-int arithmetic must not sign-extend bit 31. *)
let test_roundtrip_large_field_values () =
  let big = [ 0x7FFFFFFF; 0x80000000; 0xDEADBEEF; 0xFFFFFFFF ] in
  let pkts =
    List.mapi
      (fun i v ->
        let p = Packet.create ~ts:(0.001 *. float_of_int i) () in
        Packet.set p Field.Src_ip v;
        Packet.set p Field.Dst_ip v;
        p)
      big
  in
  let trace = Gen.of_packets ~name:"big-values" (Array.of_list pkts) in
  let path = tmp "bigvals.ntrc" in
  Trace_io.save trace path;
  let loaded = Trace_io.load path in
  checki "packet count" (List.length big) (Gen.length loaded);
  List.iteri
    (fun i v ->
      let q = (Gen.packets loaded).(i) in
      checki "src_ip" v (Packet.get q Field.Src_ip);
      checki "dst_ip" v (Packet.get q Field.Dst_ip);
      checkb "value is non-negative" true (Packet.get q Field.Src_ip >= 0))
    big;
  Sys.remove path

let suite =
  [
    ("roundtrip", `Quick, test_roundtrip);
    ("roundtrip: field values >= 2^31", `Quick, test_roundtrip_large_field_values);
    ("loaded trace replays identically", `Quick, test_loaded_trace_replays_identically);
    ("profile name preserved", `Quick, test_profile_name_preserved);
    ("loads version-1 files", `Quick, test_loads_v1_files);
    ("empty trace", `Quick, test_empty_trace);
    ("rejects bad magic", `Quick, test_rejects_bad_magic);
    ("rejects bad version", `Quick, test_rejects_bad_version);
    ("rejects truncated", `Quick, test_rejects_truncated);
  ]
