(** Tests for the sharded parallel replay engine: jobs=1 bit-identity
    against the sequential engine, per-query differential equivalence at
    4 shards, sketch-merge algebra, and shard-assignment invariants. *)

open Newton_packet
open Newton_query
open Newton_sketch
open Newton_runtime

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let compile = Newton_compiler.Compose.compile

let attack_trace ?(flows = 400) ?(seed = 7) () =
  Newton_trace.Gen.generate ~attacks:Newton_trace.Attack.default_suite ~seed
    (Newton_trace.Profile.with_flows Newton_trace.Profile.caida_like flows)

let report_eq (a : Report.t) (b : Report.t) =
  Report.compare a b = 0 && a.Report.value = b.Report.value
  && a.Report.value2 = b.Report.value2

let report_list_eq a b =
  List.length a = List.length b && List.for_all2 report_eq a b

(* ---------------- jobs=1 bit-identity ---------------- *)

(* A single shard receives every packet in trace order, so the whole
   pipeline (partition, batches, merge) must collapse to the sequential
   engine exactly — reports equal element-for-element, order included. *)
let test_jobs1_bit_identical () =
  let trace = attack_trace () in
  let seq = Engine.create ~switch_id:0 () in
  let par = Parallel_engine.create ~jobs:1 ~batch:64 ~switch_id:0 () in
  List.iter
    (fun q ->
      let compiled = compile q in
      ignore (Engine.install seq compiled);
      ignore (Parallel_engine.install par compiled))
    (Catalog.all ());
  Newton_trace.Gen.iter (Engine.process_packet seq) trace;
  Parallel_engine.process_trace par trace;
  checki "packets seen" (Engine.packets_seen seq) (Parallel_engine.packets_seen par);
  let rs = Engine.reports seq and rp = Parallel_engine.reports par in
  checki "report count" (List.length rs) (List.length rp);
  checkb "reports bit-identical" true (report_list_eq rs rp)

(* ---------------- differential: shard-merged vs sequential ---------------- *)

(* Branch_key sharding keeps every aggregate of a query on one shard,
   so shard-merged reports must match the sequential engine modulo
   sketch-collision noise (per-shard Bloom/CM banks see fewer keys).
   Wide register banks make that noise vanish, so the comparison is
   exact — identity and values. *)
let differential_options =
  { Newton_compiler.Decompose.default_options with registers = 65536 }

let run_differential q =
  let trace = attack_trace () in
  let compiled = compile ~options:differential_options q in
  let seq = Engine.create ~switch_id:0 () in
  ignore (Engine.install seq compiled);
  Newton_trace.Gen.iter (Engine.process_packet seq) trace;
  let par =
    Parallel_engine.create ~jobs:4 ~shard_key:(Shard.for_compiled compiled)
      ~switch_id:0 ()
  in
  ignore (Parallel_engine.install par compiled);
  Parallel_engine.process_trace par trace;
  (Engine.reports seq, Parallel_engine.reports par, par)

let test_differential_catalog () =
  List.iter
    (fun q ->
      let rs, rp, par = run_differential q in
      let sorted l = List.stable_sort Report.compare l in
      let rs = sorted rs and rp = sorted rp in
      Alcotest.(check int)
        (Printf.sprintf "Q%d report count" q.Ast.id)
        (List.length rs) (List.length rp);
      checkb
        (Printf.sprintf "Q%d shard-merged = sequential" q.Ast.id)
        true
        (report_list_eq rs rp);
      (* every shard saw a slice, all packets accounted for *)
      let loads = Parallel_engine.shard_loads par in
      checki
        (Printf.sprintf "Q%d packets partitioned" q.Ast.id)
        (Parallel_engine.packets_seen par)
        (Array.fold_left ( + ) 0 loads))
    (Catalog.all ())

(* ---------------- merged state = sequential state ---------------- *)

(* Over a trace that fits in one window, ALU-merging the per-shard
   register banks must reproduce the sequential banks register for
   register (same hash seeds, associative/commutative ops). *)
let test_merged_state_matches_sequential () =
  let q = Catalog.q3 () in
  let q = { q with Ast.window = 1e9 } in
  let trace = attack_trace ~flows:200 () in
  (* wide banks: the sequential engine's fuller Bloom filter must not
     suppress chain continuations the per-shard filters allow *)
  let compiled = compile ~options:differential_options q in
  let seq = Engine.create ~switch_id:0 () in
  let uid_seq, _ = Engine.install seq compiled in
  Newton_trace.Gen.iter (Engine.process_packet seq) trace;
  let par =
    Parallel_engine.create ~jobs:4 ~shard_key:(Shard.for_compiled compiled)
      ~switch_id:0 ()
  in
  let uid_par, _ = Parallel_engine.install par compiled in
  Parallel_engine.process_trace par trace;
  let seq_inst = Option.get (Engine.find_instance seq uid_seq) in
  let merged = Option.get (Parallel_engine.merged_arrays par uid_par) in
  checkb "has state banks" true (merged <> []);
  List.iter
    (fun (key, arr) ->
      let seq_arr = Option.get (Engine.instance_array seq_inst key) in
      checki "bank size" (Register_array.size seq_arr) (Register_array.size arr);
      for i = 0 to Register_array.size arr - 1 do
        if Register_array.get arr i <> Register_array.get seq_arr i then
          Alcotest.failf "register %d differs: merged=%d sequential=%d" i
            (Register_array.get arr i)
            (Register_array.get seq_arr i)
      done)
    merged

(* ---------------- merge algebra (property) ---------------- *)

let random_bank rng size = Array.init size (fun _ -> Newton_util.Prng.int rng 1000)

let bank_of arr =
  let t = Register_array.create (Array.length arr) in
  Array.iteri (fun i v -> Register_array.set t i v) arr;
  t

let banks_equal a b =
  Register_array.size a = Register_array.size b
  && (let ok = ref true in
      for i = 0 to Register_array.size a - 1 do
        if Register_array.get a i <> Register_array.get b i then ok := false
      done;
      !ok)

let merge_ops = [ `Add; `Or; `Max ]

let test_merge_commutative () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~name:"merge commutative" ~count:100
       QCheck.(pair small_int (small_int_corners ()))
       (fun (seed, opi) ->
         let rng = Newton_util.Prng.of_int seed in
         let op = List.nth merge_ops (abs opi mod 3) in
         let size = 1 + Newton_util.Prng.int rng 64 in
         let a = random_bank rng size and b = random_bank rng size in
         banks_equal
           (Register_array.merge ~op (bank_of a) (bank_of b))
           (Register_array.merge ~op (bank_of b) (bank_of a))))

let test_merge_associative () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~name:"merge associative" ~count:100
       QCheck.(pair small_int (small_int_corners ()))
       (fun (seed, opi) ->
         let rng = Newton_util.Prng.of_int seed in
         let op = List.nth merge_ops (abs opi mod 3) in
         let size = 1 + Newton_util.Prng.int rng 64 in
         let a = random_bank rng size
         and b = random_bank rng size
         and c = random_bank rng size in
         banks_equal
           (Register_array.merge ~op
              (Register_array.merge ~op (bank_of a) (bank_of b))
              (bank_of c))
           (Register_array.merge ~op (bank_of a)
              (Register_array.merge ~op (bank_of b) (bank_of c)))))

let test_merge_size_mismatch () =
  Alcotest.check_raises "size mismatch rejected"
    (Invalid_argument "Register_array.merge_into: size mismatch (4 vs 8)")
    (fun () ->
      ignore
        (Register_array.merge ~op:`Add (Register_array.create 4)
           (Register_array.create 8)))

(* ---------------- sketch merges ---------------- *)

let test_bloom_merge_union () =
  let a = Bloom.create ~width:256 ~depth:3 ~seed:11 in
  let b = Bloom.create ~width:256 ~depth:3 ~seed:11 in
  ignore (Bloom.test_and_set a [| 1; 2 |]);
  ignore (Bloom.test_and_set b [| 3; 4 |]);
  let m = Bloom.merge a b in
  checkb "left key present" true (Bloom.mem m [| 1; 2 |]);
  checkb "right key present" true (Bloom.mem m [| 3; 4 |]);
  checki "insert count adds" 2 (Bloom.inserted m);
  Alcotest.check_raises "seed mismatch rejected"
    (Invalid_argument "Bloom.merge: hash seed mismatch") (fun () ->
      ignore (Bloom.merge a (Bloom.create ~width:256 ~depth:3 ~seed:12)))

let test_count_min_merge_sums () =
  let a = Count_min.create ~width:1024 ~depth:3 ~seed:21 in
  let b = Count_min.create ~width:1024 ~depth:3 ~seed:21 in
  ignore (Count_min.add a [| 7 |] 5);
  ignore (Count_min.add b [| 7 |] 3);
  ignore (Count_min.add b [| 9 |] 2);
  let m = Count_min.merge a b in
  checki "shared key sums" 8 (Count_min.estimate m [| 7 |]);
  checki "disjoint key kept" 2 (Count_min.estimate m [| 9 |]);
  checki "totals add" 10 (Count_min.total m)

(* ---------------- shard assignment ---------------- *)

let test_shard_flow_locality () =
  let sharder = Shard.make ~jobs:4 Shard.Flow in
  let trace = attack_trace ~flows:100 () in
  let by_flow = Hashtbl.create 256 in
  Newton_trace.Gen.iter
    (fun pkt ->
      let s = Shard.assign sharder pkt in
      checkb "shard in range" true (s >= 0 && s < 4);
      let flow = Fivetuple.of_packet pkt in
      match Hashtbl.find_opt by_flow flow with
      | None -> Hashtbl.add by_flow flow s
      | Some s' -> checki "flow stays on one shard" s' s)
    trace

let test_shard_branch_key_locality () =
  (* Q1 aggregates per dst IP: two packets sharing a dip must share a
     shard no matter which flow carried them. *)
  let compiled = compile (Catalog.q1 ()) in
  let sharder = Shard.make ~jobs:4 (Shard.for_compiled compiled) in
  let syn ~src ~sport ~dst =
    Packet.make ~ts:0.0 ~src_ip:src ~dst_ip:dst ~proto:6 ~src_port:sport
      ~dst_port:80 ~tcp_flags:Field.Tcp_flag.syn ()
  in
  for dst = 1 to 64 do
    let s1 = Shard.assign sharder (syn ~src:0x0A000001 ~sport:1234 ~dst) in
    let s2 = Shard.assign sharder (syn ~src:0x0A0000FF ~sport:4321 ~dst) in
    checki "same dip, same shard" s1 s2
  done

let suite =
  [
    Alcotest.test_case "jobs=1 bit-identical to Engine" `Quick
      test_jobs1_bit_identical;
    Alcotest.test_case "differential: 9 catalog queries at 4 shards" `Slow
      test_differential_catalog;
    Alcotest.test_case "merged state = sequential state" `Quick
      test_merged_state_matches_sequential;
    Alcotest.test_case "merge commutative (property)" `Quick
      test_merge_commutative;
    Alcotest.test_case "merge associative (property)" `Quick
      test_merge_associative;
    Alcotest.test_case "merge size mismatch" `Quick test_merge_size_mismatch;
    Alcotest.test_case "bloom merge is union" `Quick test_bloom_merge_union;
    Alcotest.test_case "count-min merge sums" `Quick test_count_min_merge_sums;
    Alcotest.test_case "flow sharding keeps flows local" `Quick
      test_shard_flow_locality;
    Alcotest.test_case "branch-key sharding keeps aggregates local" `Quick
      test_shard_branch_key_locality;
  ]
