(** Test aggregator: one alcotest section per library. *)

let () =
  Alcotest.run "newton"
    [
      ("util", Test_util.suite);
      ("json", Test_json.suite);
      ("packet", Test_packet.suite);
      ("sketch", Test_sketch.suite);
      ("trace", Test_trace.suite);
      ("trace_io", Test_trace_io.suite);
      ("series", Test_series.suite);
      ("dataplane", Test_dataplane.suite);
      ("register_alloc", Test_register_alloc.suite);
      ("query", Test_query.suite);
      ("parser", Test_parser.suite);
      ("extras", Test_extras.suite);
      ("p4gen", Test_p4gen.suite);
      ("p4sim", Test_p4sim.suite);
      ("validate", Test_validate.suite);
      ("compiler", Test_compiler.suite);
      ("network", Test_network.suite);
      ("fib", Test_fib.suite);
      ("runtime", Test_runtime.suite);
      ("parallel", Test_parallel.suite);
      ("arena", Test_arena.suite);
      ("telemetry", Test_telemetry.suite);
      ("controller", Test_controller.suite);
      ("partial_deploy", Test_partial_deploy.suite);
      ("scheduler", Test_scheduler.suite);
      ("baselines", Test_baselines.suite);
      ("cpu_analyzer", Test_cpu_analyzer.suite);
      ("core", Test_core.suite);
      ("integration", Test_integration.suite);
      ("properties", Test_properties.suite);
      ("reactive", Test_reactive.suite);
      ("refine", Test_refine.suite);
      ("recovery", Test_recovery.suite);
      ("ingest", Test_ingest.suite);
      ("analysis", Test_analysis.suite);
      ("space", Test_space.suite);
      ("service", Test_service.suite);
    ]
