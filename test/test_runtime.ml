(** Tests for Newton_runtime: the per-switch engine, CQE, the analyzer. *)

open Newton_packet
open Newton_query
open Newton_runtime

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let compile = Newton_compiler.Compose.compile

let syn ~ts ~src ~dst =
  Packet.make ~ts ~src_ip:src ~dst_ip:dst ~proto:6 ~src_port:1000 ~dst_port:80
    ~tcp_flags:Field.Tcp_flag.syn ()

(* ---------------- Ctx / SP bridging ---------------- *)

let test_ctx_sp_roundtrip () =
  let c = Ctx.create () in
  c.Ctx.hash.(0) <- 123;
  c.Ctx.state.(0) <- 456;
  c.Ctx.hash.(1) <- 789;
  c.Ctx.state.(1) <- 321;
  c.Ctx.g1 <- 99;
  let c' = Ctx.of_sp (Sp_header.decode (Sp_header.encode (Ctx.to_sp c))) in
  checki "hash0" 123 c'.Ctx.hash.(0);
  checki "state0" 456 c'.Ctx.state.(0);
  checki "hash1" 789 c'.Ctx.hash.(1);
  checki "state1" 321 c'.Ctx.state.(1);
  checki "global" 99 c'.Ctx.g1

let test_ctx_reset () =
  let c = Ctx.create () in
  c.Ctx.g1 <- 5;
  c.Ctx.stopped <- true;
  Ctx.reset c;
  checki "g1 cleared" 0 c.Ctx.g1;
  checkb "unstopped" false c.Ctx.stopped

(* ---------------- Engine basics ---------------- *)

let test_install_returns_rules () =
  let e = Engine.create ~switch_id:0 () in
  let compiled = compile (Catalog.q1 ()) in
  let _, rules = Engine.install e compiled in
  checki "rules = compiled rules" compiled.Newton_compiler.Compose.stats.Newton_compiler.Compose.rules rules;
  checki "tracked" rules (Engine.total_rules e)

let test_remove_frees_rules () =
  let e = Engine.create ~switch_id:0 () in
  let uid, rules = Engine.install e (compile (Catalog.q1 ())) in
  Alcotest.(check (option int)) "remove returns rules" (Some rules) (Engine.remove e uid);
  checki "no instances left" 0 (List.length (Engine.instances e));
  Alcotest.(check (option int)) "double remove" None (Engine.remove e uid)

let test_explicit_uid () =
  let e = Engine.create ~switch_id:0 () in
  let uid, _ = Engine.install e ~uid:5000 (compile (Catalog.q1 ())) in
  checki "uid honoured" 5000 uid

let test_q1_detects_flood () =
  let e = Engine.create ~switch_id:0 () in
  let _ = Engine.install e (compile (Catalog.q1 ~th:10 ())) in
  for i = 1 to 20 do
    Engine.process_packet e (syn ~ts:0.01 ~src:i ~dst:999)
  done;
  checki "one report for the flooded host" 1 (Engine.report_count e);
  match Engine.reports e with
  | [ r ] ->
      checki "query id" 1 r.Report.query_id;
      checki "reported key is the victim" 999 r.Report.keys.(0)
  | _ -> Alcotest.fail "expected one report"

let test_non_matching_traffic_ignored () =
  let e = Engine.create ~switch_id:0 () in
  let _ = Engine.install e (compile (Catalog.q1 ~th:5 ())) in
  for i = 1 to 20 do
    (* UDP traffic: Q1's newton_init entry (tcp, SYN) must not match. *)
    Engine.process_packet e (Packet.make ~ts:0.01 ~src_ip:i ~dst_ip:999 ~proto:17 ())
  done;
  checki "no reports" 0 (Engine.report_count e)

let test_window_roll_resets_state () =
  let e = Engine.create ~switch_id:0 () in
  let _ = Engine.install e (compile (Catalog.q1 ~th:10 ())) in
  for i = 1 to 8 do
    Engine.process_packet e (syn ~ts:0.01 ~src:i ~dst:999)
  done;
  (* new window: counts reset, 8 more SYNs stay below threshold *)
  for i = 1 to 8 do
    Engine.process_packet e (syn ~ts:0.15 ~src:i ~dst:999)
  done;
  checki "no report across window boundary" 0 (Engine.report_count e)

let test_report_dedup_within_window () =
  let e = Engine.create ~switch_id:0 () in
  let _ = Engine.install e (compile (Catalog.q1 ~th:5 ())) in
  for i = 1 to 50 do
    Engine.process_packet e (syn ~ts:0.01 ~src:i ~dst:999)
  done;
  checki "one report despite 44 above-threshold packets" 1 (Engine.report_count e)

let test_reports_again_next_window () =
  let e = Engine.create ~switch_id:0 () in
  let _ = Engine.install e (compile (Catalog.q1 ~th:5 ())) in
  for i = 1 to 10 do
    Engine.process_packet e (syn ~ts:0.01 ~src:i ~dst:999)
  done;
  for i = 1 to 10 do
    Engine.process_packet e (syn ~ts:0.15 ~src:i ~dst:999)
  done;
  checki "one report per window" 2 (Engine.report_count e)

let test_drain_reports () =
  let e = Engine.create ~switch_id:0 () in
  let _ = Engine.install e (compile (Catalog.q1 ~th:3 ())) in
  for i = 1 to 10 do
    Engine.process_packet e (syn ~ts:0.01 ~src:i ~dst:7)
  done;
  checki "drained" 1 (List.length (Engine.drain_reports e));
  checki "drain empties buffer" 0 (List.length (Engine.drain_reports e))

let test_multiple_instances_coexist () =
  let e = Engine.create ~switch_id:0 () in
  let _ = Engine.install e (compile (Catalog.q1 ~th:5 ())) in
  let _ = Engine.install e (compile (Catalog.q5 ~th:5 ())) in
  for i = 1 to 10 do
    Engine.process_packet e (syn ~ts:0.01 ~src:i ~dst:999);
    Engine.process_packet e
      (Packet.make ~ts:0.01 ~src_ip:(1000 + i) ~dst_ip:888 ~proto:17 ~src_port:5
         ~dst_port:123 ())
  done;
  let qids =
    Engine.reports e |> List.map (fun r -> r.Report.query_id) |> List.sort_uniq compare
  in
  Alcotest.(check (list int)) "both queries fired" [ 1; 5 ] qids

(* ---------------- Engine vs reference evaluator ---------------- *)

let test_engine_matches_reference () =
  let trace =
    Newton_trace.Gen.generate ~attacks:Newton_trace.Attack.default_suite ~seed:21
      (Newton_trace.Profile.with_flows Newton_trace.Profile.caida_like 1500)
  in
  List.iter
    (fun q ->
      let truth = Ref_eval.evaluate q (Newton_trace.Gen.packets trace) in
      let e = Engine.create ~switch_id:0 () in
      let _ = Engine.install e (compile q) in
      Array.iter (Engine.process_packet e) (Newton_trace.Gen.packets trace);
      let a = Analyzer.score ~truth ~detected:(Engine.reports e) in
      checkb (Printf.sprintf "Q%d recall = 1" q.Ast.id) true (a.Analyzer.recall >= 0.99);
      checkb (Printf.sprintf "Q%d precision high" q.Ast.id) true
        (a.Analyzer.precision >= 0.5))
    (Catalog.all ())

(* ---------------- CQE ---------------- *)

let cqe_engines compiled n =
  let stages = compiled.Newton_compiler.Compose.stats.Newton_compiler.Compose.stages in
  let per = max 1 ((stages + n - 1) / n) in
  List.init n (fun i ->
      let e = Engine.create ~switch_id:i () in
      let lo = i * per in
      let hi = if i = n - 1 then max_int else (lo + per) - 1 in
      ignore (Engine.install e ~uid:1 ~stage_lo:lo ~stage_hi:hi compiled);
      e)

let test_cqe_equivalent_to_single_switch () =
  let compiled = compile (Catalog.q1 ~th:10 ()) in
  let single = Engine.create ~switch_id:0 () in
  let _ = Engine.install single compiled in
  let sliced = cqe_engines compiled 3 in
  let trace =
    Newton_trace.Gen.generate ~attacks:Newton_trace.Attack.default_suite ~seed:33
      (Newton_trace.Profile.with_flows Newton_trace.Profile.caida_like 800)
  in
  Array.iter
    (fun pkt ->
      Engine.process_packet single pkt;
      Cqe.process_path sliced pkt)
    (Newton_trace.Gen.packets trace);
  let keyset es =
    List.concat_map Engine.reports es
    |> List.map (fun r -> (r.Report.window, r.Report.keys))
    |> List.sort_uniq compare
  in
  Alcotest.(check (list (pair int (array int))))
    "sliced execution detects the same keys" (keyset [ single ]) (keyset sliced)

let test_cqe_reports_once_per_path () =
  let compiled = compile (Catalog.q1 ~th:5 ()) in
  let sliced = cqe_engines compiled 2 in
  let stats = Cqe.create_stats () in
  for i = 1 to 20 do
    Cqe.process_path ~stats sliced (syn ~ts:0.01 ~src:i ~dst:42)
  done;
  checki "one report total" 1
    (List.fold_left (fun acc e -> acc + Engine.report_count e) 0 sliced);
  checki "SP header on each inter-switch hop" (20 * Sp_header.size_bytes) stats.Cqe.sp_bytes;
  checkb "overhead accounted" true (Cqe.overhead_ratio stats > 0.0)

let test_shadow_k_installed_for_slices () =
  let compiled = compile (Catalog.q1 ()) in
  let e = Engine.create ~switch_id:1 () in
  let _ = Engine.install e ~stage_lo:2 ~stage_hi:10 compiled in
  let inst = List.hd (Engine.instances e) in
  let has_k =
    Array.exists
      (fun slots ->
        List.exists (fun s -> s.Newton_compiler.Ir.kind = Newton_dataplane.Module_cost.K) slots)
      (Engine.instance_slots inst)
  in
  checkb "slice re-installs upstream K" true has_k

(* ---------------- capacity (module-table rules) ---------------- *)

let test_capacity_bounds_concurrent_queries () =
  (* Each module cell holds 256 rules; installing clones beyond that
     raises. *)
  let e = Engine.create ~switch_id:0 () in
  let compiled = compile (Catalog.q4 ()) in
  let installed = ref 0 in
  (try
     for _ = 1 to 400 do
       ignore (Engine.install e compiled);
       incr installed
     done
   with Engine.Rules_exhausted _ -> ());
  checki "capacity = rules_per_module clones"
    Newton_dataplane.Module_cost.rules_per_module !installed

let test_capacity_released_on_remove () =
  let e = Engine.create ~switch_id:0 () in
  let compiled = compile (Catalog.q4 ()) in
  (* Churn well past the static capacity: removal must free the cells. *)
  for _ = 1 to 300 do
    let uid, _ = Engine.install e compiled in
    ignore (Engine.remove e uid)
  done;
  checki "engine empty after churn" 0 (List.length (Engine.instances e))

let test_rejected_install_leaves_no_residue () =
  let e = Engine.create ~switch_id:0 () in
  let compiled = compile (Catalog.q4 ()) in
  for _ = 1 to Newton_dataplane.Module_cost.rules_per_module do
    ignore (Engine.install e compiled)
  done;
  (* the next install fails atomically... *)
  checkb "raises at capacity" true
    (try ignore (Engine.install e compiled); false
     with Engine.Rules_exhausted _ -> true);
  (* ...so removing one clone frees exactly one slot again *)
  let victim = Engine.instance_uid (List.hd (Engine.instances e)) in
  ignore (Engine.remove e victim);
  checkb "slot freed" true
    (try ignore (Engine.install e compiled); true
     with Engine.Rules_exhausted _ -> false)

let test_init_table_entries_tracked () =
  let e = Engine.create ~switch_id:0 () in
  let uid, _ = Engine.install e (compile (Catalog.q6 ())) in
  (* Q6 has two branches -> two classifier entries. *)
  checki "two init entries" 2 (Engine.init_table_size e);
  ignore (Engine.remove e uid);
  checki "entries removed" 0 (Engine.init_table_size e)

let test_report_budget_caps_exports () =
  let e = Engine.create ~switch_id:0 () in
  Engine.set_report_budget e (Some 3);
  let _ = Engine.install e (compile (Catalog.q1 ~th:2 ())) in
  (* ten distinct victims all cross the threshold in one window *)
  for v = 1 to 10 do
    for i = 1 to 5 do
      Engine.process_packet e (syn ~ts:0.01 ~src:(100 + i) ~dst:v)
    done
  done;
  checki "only the budget exports" 3 (Engine.report_count e);
  checki "rest dropped on the wire" 7 (Engine.dropped_reports e)

let test_report_budget_resets_per_window () =
  let e = Engine.create ~switch_id:0 () in
  Engine.set_report_budget e (Some 2);
  let _ = Engine.install e (compile (Catalog.q1 ~th:2 ())) in
  for v = 1 to 5 do
    for i = 1 to 5 do
      Engine.process_packet e (syn ~ts:0.01 ~src:(100 + i) ~dst:v)
    done
  done;
  for v = 1 to 5 do
    for i = 1 to 5 do
      Engine.process_packet e (syn ~ts:0.15 ~src:(100 + i) ~dst:v)
    done
  done;
  checki "budget renews each window" 4 (Engine.report_count e)

let test_no_budget_is_unlimited () =
  let e = Engine.create ~switch_id:0 () in
  let _ = Engine.install e (compile (Catalog.q1 ~th:2 ())) in
  for v = 1 to 10 do
    for i = 1 to 5 do
      Engine.process_packet e (syn ~ts:0.01 ~src:(100 + i) ~dst:v)
    done
  done;
  checki "all exported" 10 (Engine.report_count e);
  checki "nothing dropped" 0 (Engine.dropped_reports e)

let test_instance_stats () =
  let e = Engine.create ~switch_id:0 () in
  let _ = Engine.install e (compile (Catalog.q1 ~th:5 ())) in
  for i = 1 to 10 do
    Engine.process_packet e (syn ~ts:0.01 ~src:i ~dst:7)
  done;
  match Engine.stats e with
  | [ s ] ->
      checkb "query named" true (s.Engine.st_query = "new_tcp_connections");
      checkb "arrays allocated" true (s.Engine.st_arrays >= 2);
      checkb "registers counted" true (s.Engine.st_registers >= 8192);
      checkb "occupancy after traffic" true (s.Engine.st_occupancy > 0);
      checki "one key reported this window" 1 s.Engine.st_reported_keys;
      checkb "renders" true (String.length (Engine.stats_to_string s) > 0)
  | l -> Alcotest.failf "expected one stats row, got %d" (List.length l)

(* ---------------- Analyzer ---------------- *)

let mk_report ?(q = 1) ?(w = 0) ?(keys = [| 1 |]) ?(v = 10) ?(v2 = None) () =
  Report.make ~query_id:q ~window:w ~keys ~value:v ~value2:v2 ()

let test_analyzer_dedup () =
  let a = Analyzer.create () in
  Analyzer.ingest a [ mk_report (); mk_report (); mk_report ~w:1 () ];
  checki "3 messages received" 3 (Analyzer.received a);
  checki "2 distinct results" 2 (List.length (Analyzer.results a))

let test_analyzer_pair_ratio_filter () =
  let a = Analyzer.create () in
  (* 100 connections, 50 bytes each: ratio 0.5 -> slowloris, kept. *)
  Analyzer.ingest a [ mk_report ~keys:[| 1 |] ~v:100 ~v2:(Some 50) () ];
  (* 10 connections, 100000 bytes: normal server, dropped. *)
  Analyzer.ingest a [ mk_report ~keys:[| 2 |] ~v:10 ~v2:(Some 100_000) () ];
  checki "ratio filter keeps slowloris only" 1 (List.length (Analyzer.results a))

let test_analyzer_csv () =
  let csv =
    Analyzer.to_csv
      [ mk_report ~q:1 ~w:2 ~keys:[| 7; 8 |] ~v:10 ();
        mk_report ~q:8 ~w:0 ~keys:[| 9 |] ~v:3 ~v2:(Some 42) () ]
  in
  let lines = String.split_on_char '\n' (String.trim csv) in
  checki "header + two rows" 3 (List.length lines);
  Alcotest.(check string) "header" "query_id,window,keys,value,value2" (List.hd lines);
  Alcotest.(check string) "row with multi-key" "1,2,7;8,10," (List.nth lines 1);
  Alcotest.(check string) "row with value2" "8,0,9,3,42" (List.nth lines 2)

let test_analyzer_score () =
  let truth = [ mk_report ~keys:[| 1 |] (); mk_report ~keys:[| 2 |] () ] in
  let detected = [ mk_report ~keys:[| 1 |] (); mk_report ~keys:[| 3 |] () ] in
  let s = Analyzer.score ~truth ~detected in
  checki "tp" 1 s.Analyzer.true_positives;
  checki "fp" 1 s.Analyzer.false_positives;
  checki "fn" 1 s.Analyzer.false_negatives;
  Alcotest.(check (float 1e-9)) "recall" 0.5 s.Analyzer.recall;
  Alcotest.(check (float 1e-9)) "precision" 0.5 s.Analyzer.precision;
  Alcotest.(check (float 1e-9)) "fpr" 0.5 s.Analyzer.fpr

let test_analyzer_score_empty () =
  let s = Analyzer.score ~truth:[] ~detected:[] in
  Alcotest.(check (float 1e-9)) "vacuous recall" 1.0 s.Analyzer.recall;
  Alcotest.(check (float 1e-9)) "vacuous precision" 1.0 s.Analyzer.precision

let suite =
  [
    ("ctx sp roundtrip", `Quick, test_ctx_sp_roundtrip);
    ("ctx reset", `Quick, test_ctx_reset);
    ("install returns rules", `Quick, test_install_returns_rules);
    ("remove frees rules", `Quick, test_remove_frees_rules);
    ("explicit uid", `Quick, test_explicit_uid);
    ("q1 detects flood", `Quick, test_q1_detects_flood);
    ("non-matching traffic ignored", `Quick, test_non_matching_traffic_ignored);
    ("window roll resets state", `Quick, test_window_roll_resets_state);
    ("report dedup within window", `Quick, test_report_dedup_within_window);
    ("reports again next window", `Quick, test_reports_again_next_window);
    ("drain reports", `Quick, test_drain_reports);
    ("multiple instances coexist", `Quick, test_multiple_instances_coexist);
    ("engine matches reference (Q1-Q9)", `Slow, test_engine_matches_reference);
    ("cqe equivalent to single switch", `Quick, test_cqe_equivalent_to_single_switch);
    ("cqe reports once per path", `Quick, test_cqe_reports_once_per_path);
    ("shadow K installed for slices", `Quick, test_shadow_k_installed_for_slices);
    ("report budget caps exports", `Quick, test_report_budget_caps_exports);
    ("report budget resets per window", `Quick, test_report_budget_resets_per_window);
    ("no budget is unlimited", `Quick, test_no_budget_is_unlimited);
    ("instance stats", `Quick, test_instance_stats);
    ("capacity bounds concurrent queries", `Quick, test_capacity_bounds_concurrent_queries);
    ("capacity released on remove", `Quick, test_capacity_released_on_remove);
    ("rejected install leaves no residue", `Quick, test_rejected_install_leaves_no_residue);
    ("init table entries tracked", `Quick, test_init_table_entries_tracked);
    ("analyzer dedup", `Quick, test_analyzer_dedup);
    ("analyzer pair ratio filter", `Quick, test_analyzer_pair_ratio_filter);
    ("analyzer csv", `Quick, test_analyzer_csv);
    ("analyzer score", `Quick, test_analyzer_score);
    ("analyzer score empty", `Quick, test_analyzer_score_empty);
  ]
