(** Tests for the P4 deployment-artifact validator. *)

open Newton_p4gen

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let compile = Newton_compiler.Compose.compile

let test_catalog_rules_all_clean () =
  List.iter
    (fun q ->
      let issues = Validate.check_compiled (compile q) in
      Alcotest.(check (list string))
        (Printf.sprintf "Q%d artifacts lint clean" q.Newton_query.Ast.id)
        []
        (List.map Validate.issue_to_string issues))
    (Newton_query.Catalog.all () @ Newton_query.Catalog.extras ())

let test_inventory_recovers_declared_tables () =
  let layout = { Emit.stages = 2; registers = 64; rules_per_table = 16 } in
  let program = Emit.program ~layout () in
  let inv = Validate.inventory_of_program program in
  (* 2 stages x 2 sets x 5 kinds (K,H,S,R,T) + init/resume/recirc/fin *)
  checki "table count" 24 (Hashtbl.length inv.Validate.tables);
  checkb "sizes recovered" true
    (Hashtbl.find inv.Validate.tables "newton_k_s0_m0" = 16);
  checkb "init table larger" true
    (Hashtbl.find inv.Validate.tables "newton_init" = 64)

let test_unknown_table_detected () =
  let program = Emit.program ~layout:{ Emit.default_layout with Emit.stages = 1 } () in
  let rules_json =
    {|[{"table":"newton_k_s9_m0","priority":1,"match":[],"action":"newton_k_s9_m0_select","params":{}}]|}
  in
  match Validate.check ~program ~rules_json with
  | [ Validate.Unknown_table "newton_k_s9_m0" ] -> ()
  | l -> Alcotest.failf "expected unknown-table, got %d issues" (List.length l)

let test_unknown_action_detected () =
  let program = Emit.program () in
  let rules_json =
    {|[{"table":"newton_k_s0_m0","priority":1,"match":[],"action":"explode","params":{}}]|}
  in
  match Validate.check ~program ~rules_json with
  | [ Validate.Unknown_action { table = "newton_k_s0_m0"; action = "explode" } ] -> ()
  | l -> Alcotest.failf "expected unknown-action, got %d issues" (List.length l)

let test_overflow_detected () =
  let layout = { Emit.stages = 1; registers = 16; rules_per_table = 2 } in
  let program = Emit.program ~layout () in
  let entry =
    {|{"table":"newton_k_s0_m0","priority":1,"match":[],"action":"newton_k_s0_m0_select","params":{}}|}
  in
  let rules_json = "[" ^ String.concat "," [ entry; entry; entry ] ^ "]" in
  checkb "overflow reported" true
    (List.exists
       (function Validate.Table_overflow { entries = 3; size = 2; _ } -> true | _ -> false)
       (Validate.check ~program ~rules_json))

let test_malformed_document () =
  let program = Emit.program () in
  (match Validate.check ~program ~rules_json:"{not json" with
  | [ Validate.Malformed _ ] -> ()
  | _ -> Alcotest.fail "expected malformed issue");
  match Validate.check ~program ~rules_json:{|{"not":"an array"}|} with
  | [ Validate.Malformed _ ] -> ()
  | _ -> Alcotest.fail "expected top-level issue"

let test_rules_beyond_emitted_stages_flagged () =
  (* A query whose stages exceed the emitted layout references tables
     that do not exist — the validator catches the misdeployment. *)
  let small = { Emit.default_layout with Emit.stages = 3 } in
  let compiled = compile (Newton_query.Catalog.q4 ()) in
  let issues = Validate.check_compiled ~layout:small compiled in
  checkb "stage overflow caught as unknown tables" true
    (List.exists (function Validate.Unknown_table _ -> true | _ -> false) issues)

let suite =
  [
    ("catalog rules all clean", `Quick, test_catalog_rules_all_clean);
    ("inventory recovers declared tables", `Quick, test_inventory_recovers_declared_tables);
    ("unknown table detected", `Quick, test_unknown_table_detected);
    ("unknown action detected", `Quick, test_unknown_action_detected);
    ("overflow detected", `Quick, test_overflow_detected);
    ("malformed document", `Quick, test_malformed_document);
    ("rules beyond emitted stages flagged", `Quick, test_rules_beyond_emitted_stages_flagged);
  ]
