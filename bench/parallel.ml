(** Parallel replay speedup: the sequential engine vs the domain-pool
    sharded engine at increasing shard counts, over the synthetic
    Zipf-background trace with the default attack suite and all nine
    catalog queries installed.

    Shard counts come from NEWTON_BENCH_JOBS (the maximum; powers of
    two up to it are measured, default 4).  Besides the table, results
    are written as a JSON artifact — out/bench_parallel.json, or the
    path in NEWTON_BENCH_JSON — which CI uploads per run.  Speedup is
    wall-clock and therefore needs as many cores as shards; on a
    single-core host (or an OCaml 4 build, where the domain pool
    degrades to sequential execution) expect ~1x. *)

let getenv_int name default =
  match Option.bind (Sys.getenv_opt name) int_of_string_opt with
  | Some v when v > 0 -> v
  | _ -> default

let json_path () =
  Option.value (Sys.getenv_opt "NEWTON_BENCH_JSON")
    ~default:"out/bench_parallel.json"

let jobs_to_measure () =
  let max_jobs = getenv_int "NEWTON_BENCH_JOBS" 4 in
  let rec powers j acc = if j >= max_jobs then acc else powers (2 * j) (j :: acc) in
  List.rev (max_jobs :: powers 1 [])

let install_all engine =
  List.iter
    (fun q -> ignore (Newton_runtime.Engine.install engine (Common.compile q)))
    (Common.all_queries ())

let install_all_parallel engine =
  List.iter
    (fun q ->
      ignore (Newton_runtime.Parallel_engine.install engine (Common.compile q)))
    (Common.all_queries ())

let time f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

let run () =
  Common.banner "Parallel replay speedup (sharded engine, Zipf trace)";
  let flows = getenv_int "NEWTON_BENCH_FLOWS" 4000 in
  let trace = Common.caida_trace ~flows () in
  let packets = Newton_trace.Gen.packets trace in
  let npkts = Array.length packets in
  Common.note "trace: %d packets, %d flows; 9 catalog queries installed" npkts
    flows;
  if not Newton_runtime.Domain_pool.parallel then
    Common.note
      "NOTE: OCaml 4 build — domain pool runs shards sequentially, speedup ~1x";
  (* Sequential baseline: the plain per-switch engine. *)
  let seq = Newton_runtime.Engine.create ~switch_id:0 () in
  install_all seq;
  let t_seq =
    time (fun () -> Array.iter (Newton_runtime.Engine.process_packet seq) packets)
  in
  let seq_reports = List.length (Newton_runtime.Engine.reports seq) in
  let t =
    Common.T.create
      ~aligns:[ Common.T.Right; Common.T.Right; Common.T.Right; Common.T.Right; Common.T.Right ]
      [ "jobs"; "seconds"; "speedup"; "pkts/s"; "reports" ]
  in
  Common.T.add_row t
    [ "seq"; Printf.sprintf "%.3f" t_seq; "1.00x";
      Printf.sprintf "%.0f" (float_of_int npkts /. t_seq);
      string_of_int seq_reports ];
  let last_par = ref None in
  let results =
    List.map
      (fun jobs ->
        let par =
          Newton_runtime.Parallel_engine.create ~jobs ~switch_id:0 ()
        in
        install_all_parallel par;
        last_par := Some (jobs, par);
        let t_par =
          time (fun () ->
              Newton_runtime.Parallel_engine.process_packets par packets)
        in
        let reports = List.length (Newton_runtime.Parallel_engine.reports par) in
        let speedup = t_seq /. t_par in
        Common.T.add_row t
          [ string_of_int jobs; Printf.sprintf "%.3f" t_par;
            Printf.sprintf "%.2fx" speedup;
            Printf.sprintf "%.0f" (float_of_int npkts /. t_par);
            string_of_int reports ];
        (jobs, t_par, speedup, reports))
      (jobs_to_measure ())
  in
  Common.T.print t;
  Common.note
    "flow sharding splits cross-flow aggregates across shards, so the \
     multi-query report count drops vs seq (docs/PARALLELISM.md); per-query \
     equivalence uses branch-key sharding (test suite 'parallel')";
  Common.maybe_dat t "parallel_speedup";
  (* BENCH json artifact *)
  let open Newton_util.Json in
  let json =
    Obj
      [
        ("bench", String "parallel_replay_speedup");
        ("trace", Obj [ ("packets", Int npkts); ("flows", Int flows) ]);
        ("queries", Int (List.length (Common.all_queries ())));
        ("domains_parallel", Bool Newton_runtime.Domain_pool.parallel);
        ( "sequential",
          Obj [ ("seconds", Float t_seq); ("reports", Int seq_reports) ] );
        ( "sharded",
          List
            (List.map
               (fun (jobs, secs, speedup, reports) ->
                 Obj
                   [
                     ("jobs", Int jobs);
                     ("seconds", Float secs);
                     ("speedup", Float speedup);
                     ("reports", Int reports);
                   ])
               results) );
      ]
  in
  let path = json_path () in
  let dir = Filename.dirname path in
  if dir <> "." && not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out path in
  output_string oc (to_string json);
  output_char oc '\n';
  close_out oc;
  Common.note "[json written to %s]" path;
  (* Telemetry snapshot artifact: the sequential engine's metrics next
     to the widest sharded run's merged metrics, so CI can diff counter
     totals (and sketch health) between the two per run. *)
  let stats_path =
    Option.value (Sys.getenv_opt "NEWTON_STATS_JSON")
      ~default:"out/bench_stats.json"
  in
  let snap =
    Newton_telemetry.Snapshot.merge
      (Newton_runtime.Introspect.engine_metrics
         ~labels:[ ("engine", "seq") ]
         seq)
      (match !last_par with
      | Some (jobs, par) ->
          Newton_runtime.Introspect.parallel_metrics
            ~labels:[ ("engine", Printf.sprintf "par-%d" jobs) ]
            par
      | None -> Newton_telemetry.Snapshot.empty)
  in
  let dir = Filename.dirname stats_path in
  if dir <> "." && not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out stats_path in
  output_string oc (Newton_telemetry.Export.to_json_string snap);
  output_char oc '\n';
  close_out oc;
  Common.note "[stats json written to %s]" stats_path
