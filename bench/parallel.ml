(** Parallel replay speedup: the sequential per-packet engine vs the
    arena-sharded engine at increasing shard counts, over the synthetic
    Zipf-background trace with the default attack suite and all nine
    catalog queries installed.

    The sharded replay is measured per stage — arena build (pre-shard
    the stream into contiguous per-domain {!Newton_packet.Flat} arenas),
    replay (each arena through its shard engine's compiled program), and
    merge (epoch-aligned fold of the per-shard report streams) — so a
    regression is attributable to the stage that caused it.  Speedup is
    t_seq / (arena_build + replay): the merge runs once per observation,
    not per packet, and the sequential baseline's report extraction is
    likewise excluded.

    Shard counts come from NEWTON_BENCH_JOBS (the maximum; powers of
    two up to it are measured, default 8).  The trace defaults to
    ~2.2M packets (NEWTON_BENCH_FLOWS = 100000 flows at ~22 packets per
    flow); CI and the perf gate run this default.  Results are written
    as a JSON artifact — out/bench_parallel.json, or the path in
    NEWTON_BENCH_JSON — which bench/compare.ml diffs against
    bench/baselines/parallel.json.  On a single-core host the speedup
    is the compiled-arena path's per-packet win over the interpreter;
    with real cores the domain fan-out adds on top of it. *)

let getenv_int name default =
  match Option.bind (Sys.getenv_opt name) int_of_string_opt with
  | Some v when v > 0 -> v
  | _ -> default

let json_path () =
  Option.value (Sys.getenv_opt "NEWTON_BENCH_JSON")
    ~default:"out/bench_parallel.json"

let jobs_to_measure () =
  let max_jobs = getenv_int "NEWTON_BENCH_JOBS" 8 in
  let rec powers j acc = if j >= max_jobs then acc else powers (2 * j) (j :: acc) in
  List.rev (max_jobs :: powers 1 [])

let install_all engine =
  List.iter
    (fun q -> ignore (Newton_runtime.Engine.install engine (Common.compile q)))
    (Common.all_queries ())

let install_all_parallel engine =
  List.iter
    (fun q ->
      ignore (Newton_runtime.Parallel_engine.install engine (Common.compile q)))
    (Common.all_queries ())

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (Unix.gettimeofday () -. t0, v)

type staged = {
  sg_jobs : int;
  sg_build : float;
  sg_replay : float;
  sg_merge : float;
  sg_speedup : float;
  sg_reports : int;
}

let run () =
  Common.banner "Parallel replay speedup (arena-sharded engine, Zipf trace)";
  let flows = getenv_int "NEWTON_BENCH_FLOWS" 150_000 in
  let t_gen, trace = time (fun () -> Common.caida_trace ~flows ()) in
  let packets = Newton_trace.Gen.packets trace in
  let npkts = Array.length packets in
  Common.note
    "trace: %d packets, %d flows (generated in %.1fs); 9 catalog queries \
     installed"
    npkts flows t_gen;
  if not Newton_runtime.Domain_pool.parallel then
    Common.note
      "NOTE: OCaml 4 build — domain pool runs shards sequentially";
  (* Warm-up: one untimed arena build, so the first timed build does
     not pay the process's cold-page cost for the arena buffers (malloc
     recycles them across configurations once the full_major below has
     collected the previous set). *)
  ignore (Sys.opaque_identity (Newton_runtime.Arena.build1 packets));
  (* Sequential baseline: the plain per-switch engine, per-packet
     interpreter path. *)
  let seq = Newton_runtime.Engine.create ~switch_id:0 () in
  install_all seq;
  Gc.full_major ();
  let t_seq, () =
    time (fun () -> Array.iter (Newton_runtime.Engine.process_packet seq) packets)
  in
  let seq_reports = List.length (Newton_runtime.Engine.reports seq) in
  let t =
    Common.T.create
      ~aligns:
        [ Common.T.Right; Common.T.Right; Common.T.Right; Common.T.Right;
          Common.T.Right; Common.T.Right; Common.T.Right; Common.T.Right ]
      [ "jobs"; "build"; "replay"; "merge"; "total"; "speedup"; "pkts/s";
        "reports" ]
  in
  Common.T.add_row t
    [ "seq"; "-"; Printf.sprintf "%.3f" t_seq; "-"; Printf.sprintf "%.3f" t_seq;
      "1.00x"; Printf.sprintf "%.0f" (float_of_int npkts /. t_seq);
      string_of_int seq_reports ];
  let last_par = ref None in
  let results =
    List.map
      (fun jobs ->
        let par =
          Newton_runtime.Parallel_engine.create ~jobs ~switch_id:0 ()
        in
        install_all_parallel par;
        last_par := Some (jobs, par);
        (* Collect the previous configuration's arenas outside the
           timed region; the timed build then reuses their memory
           instead of paying page faults and GC pacing for them. *)
        Gc.full_major ();
        let t_build, arenas =
          time (fun () -> Newton_runtime.Parallel_engine.build_arenas par packets)
        in
        let t_replay, () =
          time (fun () -> Newton_runtime.Parallel_engine.replay_arenas par arenas)
        in
        let t_merge, reports =
          time (fun () -> Newton_runtime.Parallel_engine.reports par)
        in
        let reports = List.length reports in
        let total = t_build +. t_replay in
        let speedup = t_seq /. total in
        Common.T.add_row t
          [ string_of_int jobs; Printf.sprintf "%.3f" t_build;
            Printf.sprintf "%.3f" t_replay; Printf.sprintf "%.3f" t_merge;
            Printf.sprintf "%.3f" total; Printf.sprintf "%.2fx" speedup;
            Printf.sprintf "%.0f" (float_of_int npkts /. total);
            string_of_int reports ];
        { sg_jobs = jobs; sg_build = t_build; sg_replay = t_replay;
          sg_merge = t_merge; sg_speedup = speedup; sg_reports = reports })
      (jobs_to_measure ())
  in
  Common.T.print t;
  Common.note
    "flow sharding splits cross-flow aggregates across shards, so the \
     multi-query report count drops vs seq (docs/PARALLELISM.md); per-query \
     equivalence uses branch-key sharding (test suite 'parallel')";
  Common.maybe_dat t "parallel_speedup";
  (* BENCH json artifact — schema documented in docs/PARALLELISM.md and
     consumed by bench/compare.ml (the CI perf gate). *)
  let open Newton_util.Json in
  let json =
    Obj
      [
        ("bench", String "parallel_replay_speedup");
        ("trace", Obj [ ("packets", Int npkts); ("flows", Int flows) ]);
        ("queries", Int (List.length (Common.all_queries ())));
        ("domains_parallel", Bool Newton_runtime.Domain_pool.parallel);
        ( "sequential",
          Obj [ ("seconds", Float t_seq); ("reports", Int seq_reports) ] );
        ( "sharded",
          List
            (List.map
               (fun r ->
                 Obj
                   [
                     ("jobs", Int r.sg_jobs);
                     ("seconds", Float (r.sg_build +. r.sg_replay));
                     ("arena_build_seconds", Float r.sg_build);
                     ("replay_seconds", Float r.sg_replay);
                     ("merge_seconds", Float r.sg_merge);
                     ("speedup", Float r.sg_speedup);
                     ("reports", Int r.sg_reports);
                   ])
               results) );
      ]
  in
  let path = json_path () in
  let dir = Filename.dirname path in
  if dir <> "." && not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out path in
  output_string oc (to_string json);
  output_char oc '\n';
  close_out oc;
  Common.note "[json written to %s]" path;
  (* Telemetry snapshot artifact: the sequential engine's metrics next
     to the widest sharded run's merged metrics, so CI can diff counter
     totals (and sketch health) between the two per run. *)
  let stats_path =
    Option.value (Sys.getenv_opt "NEWTON_STATS_JSON")
      ~default:"out/bench_stats.json"
  in
  let snap =
    Newton_telemetry.Snapshot.merge
      (Newton_runtime.Introspect.engine_metrics
         ~labels:[ ("engine", "seq") ]
         seq)
      (match !last_par with
      | Some (jobs, par) ->
          Newton_runtime.Introspect.parallel_metrics
            ~labels:[ ("engine", Printf.sprintf "par-%d" jobs) ]
            par
      | None -> Newton_telemetry.Snapshot.empty)
  in
  let dir = Filename.dirname stats_path in
  if dir <> "." && not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out stats_path in
  output_string oc (Newton_telemetry.Export.to_json_string snap);
  output_char oc '\n';
  close_out oc;
  Common.note "[stats json written to %s]" stats_path
