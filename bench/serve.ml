(** Rule-churn bench for the controller daemon: intents submitted and
    withdrawn while a trace replays through the deployment.

    A survivor set (Q1 + Q4) is installed up front, then the trace
    replays in budget-bounded steps with an ephemeral intent submitted
    and withdrawn between steps — the daemon's actual interleaving.
    Measured:

    - churn throughput (submit+withdraw cycles per second of wall time)
    - submit latency percentiles (analysis gate + placement + install)
    - withdraw latency percentiles
    - zero report loss: the survivors' reconciled reports against a
      static deploy-first run over the same trace — every report the
      static run emits must appear in the churned run

    Results go to the table and a JSON artifact — out/bench_serve.json
    or the path in NEWTON_BENCH_SERVE_JSON. *)

let getenv_int name default =
  match Option.bind (Sys.getenv_opt name) int_of_string_opt with
  | Some v when v > 0 -> v
  | _ -> default

let json_path () =
  Option.value (Sys.getenv_opt "NEWTON_BENCH_SERVE_JSON")
    ~default:"out/bench_serve.json"

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

let report_key r =
  let open Newton_query.Report in
  (r.query_id, r.window, Array.to_list r.keys, r.value, r.value2)

let survivor_ids = [ 1; 4 ]

let survivor_reports deploy =
  List.filter_map
    (fun r ->
      if List.mem r.Newton_query.Report.query_id survivor_ids then
        Some (report_key r)
      else None)
    (Newton_controller.Deploy.reconciled_reports deploy)
  |> List.sort compare

let run () =
  Common.banner "Intent churn under live replay (newton serve)";
  let flows = getenv_int "NEWTON_BENCH_SERVE_FLOWS" 2000 in
  let cycles = getenv_int "NEWTON_BENCH_SERVE_CYCLES" 40 in
  let topo () = Newton_network.Topo.linear 4 in
  let trace =
    Newton_trace.Gen.generate ~attacks:Newton_trace.Attack.default_suite
      ~seed:42
      (Newton_trace.Profile.with_flows Newton_trace.Profile.caida_like flows)
  in
  let n = Newton_trace.Gen.length trace in
  Common.note "%d packets, %d churn cycles, survivors Q1+Q4" n cycles;

  (* -------- churned run: survivors first, then cycle ephemerals -------- *)
  let replay =
    Newton_service.Replay.of_trace ~topo:(topo ()) ~desc:"bench" trace
  in
  let daemon = Newton_service.Daemon.create ~replay (topo ()) in
  let submit spec =
    match
      Newton_service.Daemon.handle daemon
        (Newton_service.Api.Submit { spec; name = None })
    with
    | Newton_service.Api.Accepted info -> info.Newton_service.Intent.i_id
    | other ->
        prerr_endline (Newton_service.Api.response_summary other);
        failwith "bench_serve: submit refused"
  in
  let withdraw id =
    match Newton_service.Daemon.handle daemon (Newton_service.Api.Withdraw id) with
    | Newton_service.Api.Withdrawn_ok _ -> ()
    | other ->
        prerr_endline (Newton_service.Api.response_summary other);
        failwith "bench_serve: withdraw failed"
  in
  List.iter (fun q -> ignore (submit (Newton_service.Api.Catalog q))) survivor_ids;
  (* Ephemeral shapes cycled through the run; all pass admission next
     to the survivors. *)
  let ephemerals = [| 2; 3; 5; 6 |] in
  let budget = max 1 (n / cycles) in
  let submit_lat = Array.make cycles 0. in
  let withdraw_lat = Array.make cycles 0. in
  let deploy = Newton_service.Daemon.deploy daemon in
  let t0 = Unix.gettimeofday () in
  for c = 0 to cycles - 1 do
    ignore
      (Newton_service.Replay.step replay ~now:infinity ~budget deploy);
    let q = ephemerals.(c mod Array.length ephemerals) in
    let s0 = Unix.gettimeofday () in
    let id = submit (Newton_service.Api.Catalog q) in
    let s1 = Unix.gettimeofday () in
    withdraw id;
    let s2 = Unix.gettimeofday () in
    submit_lat.(c) <- s1 -. s0;
    withdraw_lat.(c) <- s2 -. s1
  done;
  ignore (Newton_service.Replay.run_to_end replay deploy);
  let wall = Unix.gettimeofday () -. t0 in
  let churned = survivor_reports deploy in

  (* -------- static run: survivors only, deployed before replay -------- *)
  let static_deploy = Newton_controller.Deploy.create (topo ()) in
  List.iter
    (fun q ->
      match
        Newton_controller.Deploy.deploy_checked static_deploy
          (Common.compile (Newton_query.Catalog.by_id q))
      with
      | Ok _ -> ()
      | Error _ -> failwith "bench_serve: static deploy refused")
    survivor_ids;
  let static_replay =
    Newton_service.Replay.of_trace ~topo:(topo ()) ~desc:"static" trace
  in
  ignore (Newton_service.Replay.run_to_end static_replay static_deploy);
  let static = survivor_reports static_deploy in
  let lost = List.filter (fun k -> not (List.mem k churned)) static in
  let extra = List.filter (fun k -> not (List.mem k static)) churned in

  Array.sort compare submit_lat;
  Array.sort compare withdraw_lat;
  let pct_us a p = percentile a p *. 1e6 in
  let ops_per_s = float_of_int (2 * cycles) /. wall in
  let t =
    Common.T.create
      ~aligns:[ Common.T.Left; Common.T.Right; Common.T.Right; Common.T.Right ]
      [ "operation"; "p50 us"; "p90 us"; "p99 us" ]
  in
  Common.T.add_row t
    [ "submit (gate+place+install)";
      Printf.sprintf "%.0f" (pct_us submit_lat 0.50);
      Printf.sprintf "%.0f" (pct_us submit_lat 0.90);
      Printf.sprintf "%.0f" (pct_us submit_lat 0.99) ];
  Common.T.add_row t
    [ "withdraw";
      Printf.sprintf "%.0f" (pct_us withdraw_lat 0.50);
      Printf.sprintf "%.0f" (pct_us withdraw_lat 0.90);
      Printf.sprintf "%.0f" (pct_us withdraw_lat 0.99) ];
  Common.T.print t;
  Common.note "churn rate: %.0f intent ops/s against %d replaying packets"
    ops_per_s n;
  Common.note "report loss: %d lost, %d extra (static %d, churned %d)"
    (List.length lost) (List.length extra) (List.length static)
    (List.length churned);
  if lost <> [] then failwith "bench_serve: report loss under churn";

  let open Newton_util.Json in
  let json =
    Obj
      [
        ("bench", String "serve_churn");
        ("packets", Int n);
        ("flows", Int flows);
        ("churn_cycles", Int cycles);
        ("ops_per_second", Float ops_per_s);
        ( "submit_us",
          Obj
            [
              ("p50", Float (pct_us submit_lat 0.50));
              ("p90", Float (pct_us submit_lat 0.90));
              ("p99", Float (pct_us submit_lat 0.99));
            ] );
        ( "withdraw_us",
          Obj
            [
              ("p50", Float (pct_us withdraw_lat 0.50));
              ("p90", Float (pct_us withdraw_lat 0.90));
              ("p99", Float (pct_us withdraw_lat 0.99));
            ] );
        ("static_reports", Int (List.length static));
        ("churned_reports", Int (List.length churned));
        ("lost_reports", Int (List.length lost));
        ("extra_reports", Int (List.length extra));
      ]
  in
  let out = json_path () in
  let dir = Filename.dirname out in
  if dir <> "." && not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out out in
  output_string oc (to_string json);
  output_char oc '\n';
  close_out oc;
  Common.note "[json written to %s]" out
