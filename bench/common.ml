(** Shared helpers for the experiment harness. *)

module T = Newton_util.Tablefmt

let banner = T.banner

(** Standard evaluation traces: the two real-world trace substitutes. *)
let caida_trace ?(flows = 4000) ?(seed = 42) () =
  Newton_trace.Gen.generate ~attacks:Newton_trace.Attack.default_suite ~seed
    (Newton_trace.Profile.with_flows Newton_trace.Profile.caida_like flows)

let mawi_trace ?(flows = 4000) ?(seed = 43) () =
  Newton_trace.Gen.generate ~attacks:Newton_trace.Attack.default_suite ~seed
    (Newton_trace.Profile.with_flows Newton_trace.Profile.mawi_like flows)

(** Mixed v4/v6/tunnel trace: the extended attack corpus layered on the
    same Zipf background, exercising the IPv6, ICMPv6 and VXLAN/GRE
    decode paths alongside plain IPv4. *)
let mixed_trace ?(flows = 4000) ?(seed = 44) () =
  Newton_trace.Gen.generate ~attacks:Newton_trace.Attack.extended_suite ~seed
    (Newton_trace.Profile.with_flows Newton_trace.Profile.caida_like flows)

let all_queries () = Newton_query.Catalog.all ()

let compile = Newton_compiler.Compose.compile

let compile_with opts q = Newton_compiler.Compose.compile ~options:opts q

let pct x = Printf.sprintf "%.1f%%" (100.0 *. x)

let note fmt = Printf.printf ("  " ^^ fmt ^^ "\n")

(** When NEWTON_BENCH_DATA is set to a directory, benches also write
    their tables as gnuplot-friendly .dat files there. *)
let maybe_dat table name =
  match Sys.getenv_opt "NEWTON_BENCH_DATA" with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let path = Filename.concat dir (name ^ ".dat") in
      T.write_dat table path;
      Printf.printf "  [data written to %s]\n" path
