(** Experiment harness: regenerates every table and figure of the
    paper's evaluation (§6).  Run all experiments with no arguments, or
    pass experiment names (fig7 fig10 fig11 fig12 fig13 fig14 fig15
    fig16 fig17 table3 p4sim micro) to run a subset. *)

let experiments =
  [ ("fig7", Fig7.run);
    ("fig10", Fig10.run);
    ("fig11", Fig11.run);
    ("fig12", Fig12.run);
    ("fig13", Fig13.run);
    ("fig14", Fig14.run);
    ("fig15", Fig15.run);
    ("fig16", Fig16.run);
    ("fig17", Fig17.run);
    ("table3", Table3.run);
    ("ablation", Ablation.run);
    ("detection", Detection.run);
    ("refinement", Refinement.run);
    ("parallel", Parallel.run);
    ("ingest", Ingest.run);
    ("analysis", Analysis.run);
    ("p4sim", P4sim.run);
    ("serve", Serve.run);
    ("space", Space.run);
    ("micro", Microbench.run) ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: [] -> List.map fst experiments
    | _ :: args -> args
    | [] -> []
  in
  print_endline "Newton (CoNEXT'20) — evaluation reproduction harness";
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some run ->
          let t0 = Unix.gettimeofday () in
          run ();
          Printf.printf "  [%s completed in %.1fs]\n%!" name (Unix.gettimeofday () -. t0)
      | None ->
          Printf.eprintf "unknown experiment %s (available: %s)\n" name
            (String.concat " " (List.map fst experiments));
          exit 1)
    requested
