(** Static-analysis latency: what `newton check` and the deployment
    admission gate cost.

    The gate runs on every [Deploy.deploy], so its latency rides the
    paper's headline query-deployment numbers (Fig. 10); this bench
    pins down three shapes:

    - single  — [Check.check_query] per catalog query, all passes
    - set     — [Check.check_queries] over the full catalog + extras
                (peers and co-residents make conflict/capacity
                quadratic in the deployment size)
    - gate    — [Check.admission] of one compiled query against an
                already-deployed catalog, the exact deploy-time path

    Results go to the table and a JSON artifact —
    out/bench_analysis.json or the path in NEWTON_BENCH_ANALYSIS_JSON —
    which tracks the analysis perf trajectory alongside the other
    benches. *)

let getenv_int name default =
  match Option.bind (Sys.getenv_opt name) int_of_string_opt with
  | Some v when v > 0 -> v
  | _ -> default

let json_path () =
  Option.value (Sys.getenv_opt "NEWTON_BENCH_ANALYSIS_JSON")
    ~default:"out/bench_analysis.json"

(* Mean seconds per call over [iters] runs of [f]. *)
let time_mean iters f =
  ignore (f ());
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    ignore (f ())
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int iters

let run () =
  Common.banner "Static-analysis latency (newton check / admission gate)";
  let iters = getenv_int "NEWTON_BENCH_ANALYSIS_ITERS" 200 in
  let queries = Newton_query.Catalog.all () @ Newton_query.Catalog.extras () in
  let compiled = List.map (fun q -> (q, Common.compile q)) queries in
  Common.note "%d queries, %d iterations per shape" (List.length queries) iters;
  let t =
    Common.T.create
      ~aligns:[ Common.T.Left; Common.T.Right; Common.T.Right ]
      [ "shape"; "mean us"; "diags" ]
  in
  (* single: every catalog query through every pass, averaged. *)
  let single_means =
    List.map
      (fun q ->
        let s =
          time_mean iters (fun () -> Newton_analysis.Check.check_query q)
        in
        (q.Newton_query.Ast.name, s))
      queries
  in
  let single_mean =
    List.fold_left (fun acc (_, s) -> acc +. s) 0.0 single_means
    /. float_of_int (List.length single_means)
  in
  Common.T.add_row t
    [ "single (catalog mean)"; Printf.sprintf "%.1f" (single_mean *. 1e6); "0" ];
  (* set: the full catalog analysed together (peers + co-residents). *)
  let set_mean =
    time_mean iters (fun () -> Newton_analysis.Check.check_queries queries)
  in
  let set_diags = Newton_analysis.Check.check_queries queries in
  Common.T.add_row t
    [
      "set (catalog together)";
      Printf.sprintf "%.1f" (set_mean *. 1e6);
      string_of_int (List.length set_diags);
    ];
  (* gate: admit one more compiled query against a deployed catalog —
     the exact code path [Deploy.deploy] runs before installing. *)
  let incoming = Common.compile (Newton_query.Catalog.q4 ~th:99 ()) in
  let gate_mean =
    time_mean iters (fun () ->
        Newton_analysis.Check.admission ~deployed:compiled incoming)
  in
  let gate_diags = Newton_analysis.Check.admission ~deployed:compiled incoming in
  Common.T.add_row t
    [
      "gate (admission vs catalog)";
      Printf.sprintf "%.1f" (gate_mean *. 1e6);
      string_of_int (List.length gate_diags);
    ];
  Common.T.print t;
  Common.note "per-query detail: slowest %s"
    (fst
       (List.fold_left
          (fun (bn, bs) (n, s) -> if s > bs then (n, s) else (bn, bs))
          ("", 0.0) single_means));
  Common.maybe_dat t "analysis_latency";
  let open Newton_util.Json in
  let json =
    Obj
      [
        ("bench", String "analysis_latency");
        ("queries", Int (List.length queries));
        ("iterations", Int iters);
        ( "single",
          Obj
            (("mean_us", Float (single_mean *. 1e6))
            :: List.map (fun (n, s) -> (n, Float (s *. 1e6))) single_means) );
        ( "set",
          Obj
            [
              ("mean_us", Float (set_mean *. 1e6));
              ("diagnostics", Int (List.length set_diags));
            ] );
        ( "gate",
          Obj
            [
              ("mean_us", Float (gate_mean *. 1e6));
              ("diagnostics", Int (List.length gate_diags));
            ] );
      ]
  in
  let out = json_path () in
  let dir = Filename.dirname out in
  if dir <> "." && not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out out in
  output_string oc (to_string json);
  output_char oc '\n';
  close_out oc;
  Common.note "[json written to %s]" out
