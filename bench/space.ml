(** Exact packet-space solver cost: what the NA090–NA094 space passes
    add on top of the ~7 µs interval-analysis baseline.

    Two layers:

    - solver ops — raw throughput of the ternary bit-cube primitives
      (atom compilation, intersection, union, difference, containment,
      model extraction) on catalog-shaped operand sets
    - pass latency — per-intent cost of the space pass family alone,
      and of a full [Check.check_query] with and without it, so the
      marginal price of exactness is visible next to the interval
      baseline bench/analysis.ml pins

    Results go to the table and a JSON artifact —
    out/bench_space.json or the path in NEWTON_BENCH_SPACE_JSON. *)

open Newton_query
module Space = Newton_analysis.Space

let getenv_int name default =
  match Option.bind (Sys.getenv_opt name) int_of_string_opt with
  | Some v when v > 0 -> v
  | _ -> default

let json_path () =
  Option.value (Sys.getenv_opt "NEWTON_BENCH_SPACE_JSON")
    ~default:"out/bench_space.json"

(* Ops per second over [iters] runs of [f]. *)
let ops_per_s iters f =
  ignore (f ());
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    ignore (f ())
  done;
  float_of_int iters /. (Unix.gettimeofday () -. t0)

let time_mean iters f =
  ignore (f ());
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    ignore (f ())
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int iters

let branch_space branch =
  Space.of_preds (List.map snd (Ast.cmp_atoms branch))

let query_space q =
  List.fold_left
    (fun acc b -> Space.union acc (branch_space b))
    Space.empty q.Ast.branches

let run () =
  Common.banner "Exact packet-space solver (NA090-NA094)";
  let iters = getenv_int "NEWTON_BENCH_SPACE_ITERS" 2000 in
  let queries = Catalog.all () @ Catalog.extras () in
  let spaces = List.map query_space queries in
  Common.note "%d catalog intents, %d iterations per op" (List.length queries)
    iters;
  let pairs =
    (* every adjacent pair of catalog spaces: the shapes NA092 visits *)
    let rec go = function
      | a :: (b :: _ as rest) -> (a, b) :: go rest
      | _ -> []
    in
    go spaces
  in
  let on_pairs f () = List.iter (fun (a, b) -> ignore (f a b)) pairs in
  let t =
    Common.T.create
      ~aligns:[ Common.T.Left; Common.T.Right ]
      [ "solver op (catalog shapes)"; "ops/s" ]
  in
  let solver_ops =
    [
      ( "compile (query -> space)",
        ops_per_s iters (fun () -> List.iter (fun q -> ignore (query_space q)) queries) );
      ("inter", ops_per_s iters (on_pairs Space.inter));
      ("union", ops_per_s iters (on_pairs Space.union));
      ("diff", ops_per_s iters (on_pairs Space.diff));
      ("subset", ops_per_s iters (on_pairs Space.subset));
      ( "model",
        ops_per_s iters (fun () -> List.iter (fun s -> ignore (Space.model s)) spaces) );
    ]
  in
  List.iter
    (fun (name, ops) -> Common.T.add_row t [ name; Printf.sprintf "%.0f" ops ])
    solver_ops;
  Common.T.print t;
  (* per-intent pass latency: the space passes alone, and the marginal
     cost inside a full check next to the interval baseline. *)
  let check_iters = getenv_int "NEWTON_BENCH_SPACE_CHECK_ITERS" 200 in
  let mean_over f =
    List.fold_left (fun acc q -> acc +. time_mean check_iters (fun () -> f q)) 0.0
      queries
    /. float_of_int (List.length queries)
  in
  let space_pass_mean =
    mean_over (fun q ->
        let ctx =
          {
            Newton_analysis.Pass.query = q;
            cfg = Newton_analysis.Pass.default_config;
            compiled = Some (Common.compile q);
            compile_error = None;
            peers = [];
            co_resident = [];
            target = None;
          }
        in
        Newton_analysis.Pass_space.run ctx)
  in
  let full_check_mean =
    mean_over (fun q -> Newton_analysis.Check.check_query q)
  in
  let t2 =
    Common.T.create
      ~aligns:[ Common.T.Left; Common.T.Right ]
      [ "per-intent latency"; "mean us" ]
  in
  Common.T.add_row t2
    [ "space passes alone"; Printf.sprintf "%.1f" (space_pass_mean *. 1e6) ];
  Common.T.add_row t2
    [ "full check (all passes)"; Printf.sprintf "%.1f" (full_check_mean *. 1e6) ];
  Common.T.print t2;
  Common.maybe_dat t "space_solver";
  let open Newton_util.Json in
  let json =
    Obj
      [
        ("bench", String "space_solver");
        ("queries", Int (List.length queries));
        ("iterations", Int iters);
        ( "solver_ops_per_s",
          Obj (List.map (fun (n, v) -> (n, Float v)) solver_ops) );
        ( "pass_latency_us",
          Obj
            [
              ("space_passes", Float (space_pass_mean *. 1e6));
              ("full_check", Float (full_check_mean *. 1e6));
            ] );
      ]
  in
  let out = json_path () in
  let dir = Filename.dirname out in
  if dir <> "." && not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out out in
  output_string oc (to_string json);
  output_char oc '\n';
  close_out oc;
  Common.note "[json written to %s]" out
