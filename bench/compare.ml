(** CI perf-regression gate for the parallel replay bench.

    Diffs a fresh out/bench_parallel.json against the committed
    baseline (bench/baselines/parallel.json by default) and fails —
    exit 1 — when the gate-jobs speedup regresses below
    [baseline * (1 - tolerance)].  Speedup is a ratio of two
    measurements taken in the same process on the same machine, so it
    transfers across hosts far better than absolute seconds do; the
    gate therefore compares speedups only, and prints the stage
    timings (arena build / replay / merge) as context for diagnosing a
    failure rather than gating on them.

        compare.exe [--baseline PATH] [--current PATH]
                    [--tolerance FRACTION] [--jobs N]

    Defaults: baseline bench/baselines/parallel.json, current
    out/bench_parallel.json, tolerance 0.20 (±20%), jobs 4.  Exit 0 on
    pass, 1 on a speedup regression, 2 on unreadable or mismatched
    inputs. *)

module Json = Newton_util.Json

let usage () =
  prerr_endline
    "usage: compare.exe [--baseline PATH] [--current PATH] \
     [--tolerance FRACTION] [--jobs N]";
  exit 2

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("error: " ^ s); exit 2) fmt

let parse_args () =
  let baseline = ref "bench/baselines/parallel.json" in
  let current = ref "out/bench_parallel.json" in
  let tolerance = ref 0.20 in
  let jobs = ref 4 in
  let rec go = function
    | [] -> ()
    | "--baseline" :: v :: rest -> baseline := v; go rest
    | "--current" :: v :: rest -> current := v; go rest
    | "--tolerance" :: v :: rest -> (
        match float_of_string_opt v with
        | Some f when f >= 0.0 && f < 1.0 -> tolerance := f; go rest
        | _ -> fail "--tolerance wants a fraction in [0, 1), got %s" v)
    | "--jobs" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n when n >= 1 -> jobs := n; go rest
        | _ -> fail "--jobs wants a positive int, got %s" v)
    | [ ("--baseline" | "--current" | "--tolerance" | "--jobs") ] | "--help" :: _
      ->
        usage ()
    | arg :: _ -> prerr_endline ("unknown argument: " ^ arg); usage ()
  in
  go (List.tl (Array.to_list Sys.argv));
  (!baseline, !current, !tolerance, !jobs)

let read_json path =
  if not (Sys.file_exists path) then fail "%s does not exist" path;
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Json.of_string s with
  | j -> j
  | exception Json.Parse_error { pos; msg } ->
      fail "%s: JSON parse error at %d: %s" path pos msg

let number = function
  | Json.Int i -> Some (float_of_int i)
  | Json.Float f -> Some f
  | _ -> None

let get_number path json keys =
  let rec walk json = function
    | [] -> number json
    | k :: rest -> Option.bind (Json.member k json) (fun j -> walk j rest)
  in
  match walk json keys with
  | Some v -> v
  | None -> fail "%s: missing numeric field %s" path (String.concat "." keys)

(* The "sharded" list, as (jobs, entry) pairs. *)
let sharded path json =
  match Option.bind (Json.member "sharded" json) Json.to_list with
  | None -> fail "%s: missing \"sharded\" list" path
  | Some entries ->
      List.map
        (fun e ->
          match Option.bind (Json.member "jobs" e) Json.to_int_opt with
          | Some j -> (j, e)
          | None -> fail "%s: sharded entry without \"jobs\"" path)
        entries

let entry_number path e field =
  match Option.bind (Json.member field e) number with
  | Some v -> v
  | None -> fail "%s: sharded entry missing %s" path field

(* Stage seconds are informational; older artifacts may lack them. *)
let entry_number_opt e field = Option.bind (Json.member field e) number

let () =
  let baseline_path, current_path, tolerance, gate_jobs = parse_args () in
  let baseline = read_json baseline_path in
  let current = read_json current_path in
  let b_sharded = sharded baseline_path baseline in
  let c_sharded = sharded current_path current in
  let b_pkts = get_number baseline_path baseline [ "trace"; "packets" ] in
  let c_pkts = get_number current_path current [ "trace"; "packets" ] in
  if b_pkts <> c_pkts then
    Printf.printf
      "note: trace size differs (baseline %.0f vs current %.0f packets) — \
       speedups are still comparable, seconds are not\n"
      b_pkts c_pkts;
  Printf.printf "%-6s %18s %18s %8s\n" "jobs" "baseline speedup" "current speedup"
    "delta";
  List.iter
    (fun (j, ce) ->
      match List.assoc_opt j b_sharded with
      | None -> Printf.printf "%-6d %18s %18.2fx %8s\n" j "-" (entry_number current_path ce "speedup") "new"
      | Some be ->
          let bs = entry_number baseline_path be "speedup" in
          let cs = entry_number current_path ce "speedup" in
          Printf.printf "%-6d %17.2fx %17.2fx %+7.1f%%\n" j bs cs
            (100.0 *. ((cs -. bs) /. bs)))
    c_sharded;
  (match (List.assoc_opt gate_jobs c_sharded, List.assoc_opt gate_jobs b_sharded)
   with
  | None, _ -> fail "%s has no jobs=%d entry to gate on" current_path gate_jobs
  | _, None -> fail "%s has no jobs=%d entry to gate on" baseline_path gate_jobs
  | Some ce, Some be ->
      let bs = entry_number baseline_path be "speedup" in
      let cs = entry_number current_path ce "speedup" in
      let floor = bs *. (1.0 -. tolerance) in
      let stages e path =
        match
          ( entry_number_opt e "arena_build_seconds",
            entry_number_opt e "replay_seconds",
            entry_number_opt e "merge_seconds" )
        with
        | Some b, Some r, Some m ->
            Printf.printf
              "  %s stages at jobs=%d: arena build %.3fs, replay %.3fs, merge \
               %.3fs\n"
              path gate_jobs b r m
        | _ -> ()
      in
      Printf.printf
        "gate: jobs=%d speedup %.2fx vs baseline %.2fx (floor %.2fx = \
         baseline - %.0f%%)\n"
        gate_jobs cs bs floor (100.0 *. tolerance);
      stages be baseline_path;
      stages ce current_path;
      if cs < floor then begin
        Printf.printf
          "FAIL: jobs=%d speedup regressed below the floor — see the stage \
           timings above for where the time went\n"
          gate_jobs;
        exit 1
      end
      else Printf.printf "PASS\n")
