(** Ingestion throughput: pcap export, capture decode, and paced
    streaming replay through the full catalog engine, against the
    native in-memory replay of the same trace.

    Two trace configurations run back to back:
    - v4        — the standard Zipf-background attack trace (pure IPv4)
    - mixed     — the extended corpus layered on the same background:
                  IPv6/ICMPv6 scan traffic plus VXLAN-tunneled flows,
                  exercising the extension-header walk and decap paths

    Stages measured per configuration (NEWTON_BENCH_FLOWS flows each,
    default 4000):
    - export  — encode packets to Ethernet frames and write classic pcap
    - load    — read + decode the capture back into packets
    - stream  — pull the capture through the bounded-queue driver into
                an engine with the catalog installed
    - native  — the same engine fed directly from memory (baseline)

    Results go to the table and a JSON artifact — out/bench_ingest.json
    or the path in NEWTON_BENCH_INGEST_JSON — which CI uploads per run
    so the ingestion perf trajectory is tracked alongside the parallel
    one. *)

let getenv_int name default =
  match Option.bind (Sys.getenv_opt name) int_of_string_opt with
  | Some v when v > 0 -> v
  | _ -> default

let json_path () =
  Option.value (Sys.getenv_opt "NEWTON_BENCH_INGEST_JSON")
    ~default:"out/bench_ingest.json"

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

let fresh_engine queries =
  let e = Newton_runtime.Engine.create ~switch_id:0 () in
  List.iter
    (fun q -> ignore (Newton_runtime.Engine.install e (Common.compile q)))
    queries;
  e

(* Run the full export / load / stream / native cycle for one trace
   configuration, add its rows to the shared table, and return the JSON
   section describing it. *)
let measure ~label ~queries ~table ~flows trace =
  let npkts = Newton_trace.Gen.length trace in
  let path = Filename.temp_file "newton_bench" ".pcap" in
  Common.note "%s: %d packets, %d flows; %d queries installed" label npkts
    flows (List.length queries);
  let t_export, () =
    time (fun () -> Newton_ingest.Capture.export trace path)
  in
  let file_bytes = (Unix.stat path).Unix.st_size in
  let t_load, loaded =
    time (fun () -> Newton_ingest.Capture.load path)
  in
  assert (Newton_trace.Gen.length loaded = npkts);
  (* Native replay baseline: memory-resident packets into the engine. *)
  let native = fresh_engine queries in
  let t_native, () =
    time (fun () ->
        Array.iter
          (Newton_runtime.Engine.process_packet native)
          (Newton_trace.Gen.packets trace))
  in
  let native_reports = List.length (Newton_runtime.Engine.reports native) in
  (* Streaming replay: decode-on-the-fly through the bounded queue. *)
  let streamed = fresh_engine queries in
  let stats = Newton_telemetry.Stats.create () in
  let t_stream, summary =
    time (fun () ->
        Newton_ingest.Capture.with_source ~stats path (fun src ->
            Newton_ingest.Stream.run ~stats src (fun batch ->
                Array.iter
                  (Newton_runtime.Engine.process_packet streamed)
                  batch)))
  in
  let stream_reports = List.length (Newton_runtime.Engine.reports streamed) in
  Sys.remove path;
  let rate n secs = float_of_int n /. secs in
  let mbps secs = float_of_int file_bytes /. secs /. 1e6 in
  let row stage secs =
    Common.T.add_row table
      [ label ^ "/" ^ stage; Printf.sprintf "%.3f" secs;
        Printf.sprintf "%.0f" (rate npkts secs);
        Printf.sprintf "%.1f" (mbps secs) ]
  in
  row "export" t_export;
  row "load" t_load;
  row "stream+engine" t_stream;
  row "native+engine" t_native;
  Common.note
    "%s: capture file %.1f MB; stream/native overhead %.2fx; reports %d vs %d"
    label
    (float_of_int file_bytes /. 1e6)
    (t_stream /. t_native) stream_reports native_reports;
  let open Newton_util.Json in
  let stage secs =
    Obj
      [ ("seconds", Float secs); ("packets_per_sec", Float (rate npkts secs));
        ("mb_per_sec", Float (mbps secs)) ]
  in
  Obj
    [
      ("name", String label);
      ("trace", Obj [ ("packets", Int npkts); ("flows", Int flows) ]);
      ("queries", Int (List.length queries));
      ("file_bytes", Int file_bytes);
      ("export", stage t_export);
      ("load", stage t_load);
      ("stream_engine", stage t_stream);
      ("native_engine", stage t_native);
      ("stream_overhead", Float (t_stream /. t_native));
      ( "stream",
        Obj
          [
            ("delivered", Int summary.Newton_ingest.Stream.delivered);
            ("dropped", Int summary.Newton_ingest.Stream.dropped);
            ("chunks", Int summary.Newton_ingest.Stream.chunks);
            ( "frames",
              Int
                (Newton_telemetry.Stats.get stats
                   Newton_telemetry.Stats.Ingest_frames) );
          ] );
      ( "reports",
        Obj [ ("stream", Int stream_reports); ("native", Int native_reports) ]
      );
    ]

let run () =
  Common.banner "Ingestion throughput (pcap export / decode / streaming replay)";
  let flows = getenv_int "NEWTON_BENCH_FLOWS" 4000 in
  let table =
    Common.T.create
      ~aligns:[ Common.T.Left; Common.T.Right; Common.T.Right; Common.T.Right ]
      [ "config/stage"; "seconds"; "pkts/s"; "MB/s" ]
  in
  let catalog = Common.all_queries () in
  let extended = catalog @ Newton_query.Catalog.extras () in
  let v4 =
    measure ~label:"v4" ~queries:catalog ~table ~flows
      (Common.caida_trace ~flows ())
  in
  let mixed =
    measure ~label:"mixed" ~queries:extended ~table ~flows
      (Common.mixed_trace ~flows ())
  in
  Common.T.print table;
  Common.maybe_dat table "ingest_throughput";
  let open Newton_util.Json in
  let json =
    Obj
      [
        ("bench", String "ingest_throughput");
        ("configs", List [ v4; mixed ]);
      ]
  in
  let out = json_path () in
  let dir = Filename.dirname out in
  if dir <> "." && not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out out in
  output_string oc (to_string json);
  output_char oc '\n';
  close_out oc;
  Common.note "[json written to %s]" out
