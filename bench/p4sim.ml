(** Interpreted-P4 throughput vs the simulator engine.

    The differential harness (`newton p4 diff`) replays every packet
    through both targets; this bench pins how much slower the
    interpreter side is — the number that bounds differential-run
    time in CI and locally.  Three shapes per query: the engine's
    packets/s, the interpreter's packets/s over pre-synthesized wire
    bytes, and the packet-synthesis ({!Newton_p4sim.Phv}) rate that a
    differential run pays on top.

    Results go to the table and a JSON artifact —
    out/bench_p4sim.json or the path in NEWTON_BENCH_P4SIM_JSON. *)

let json_path () =
  Option.value (Sys.getenv_opt "NEWTON_BENCH_P4SIM_JSON")
    ~default:"out/bench_p4sim.json"

let getenv_float name default =
  match Option.bind (Sys.getenv_opt name) float_of_string_opt with
  | Some v when v > 0.0 -> v
  | _ -> default

let rate n t = if t <= 0.0 then 0.0 else float_of_int n /. t

let run () =
  Common.banner "Interpreted-P4 pipeline vs engine (differential cost)";
  let scale = getenv_float "NEWTON_BENCH_P4SIM_SCALE" 0.03 in
  let packets = Newton_p4sim.Corpus.coverage_packets ~scale () in
  let n = List.length packets in
  Common.note "%d packets (pinned coverage corpus, scale %.2f)" n scale;
  (* synthesis once: its rate is a shape of its own, and the
     interpreter shape should not re-pay it per query *)
  let t0 = Unix.gettimeofday () in
  let bytes =
    List.filter_map
      (fun p -> Result.to_option (Newton_p4sim.Phv.synthesize p))
      packets
  in
  let synth_s = Unix.gettimeofday () -. t0 in
  let synth_pps = rate (List.length bytes) synth_s in
  let program =
    Newton_p4sim.P4parse.parse (Newton_p4gen.Emit.program ())
  in
  let t =
    Common.T.create
      ~aligns:[ Common.T.Left; Common.T.Right; Common.T.Right; Common.T.Right ]
      [ "query"; "engine pps"; "interp pps"; "slowdown" ]
  in
  let per_query =
    List.map
      (fun q ->
        let compiled = Newton_compiler.Compose.compile q in
        let engine =
          Newton_runtime.Engine.create ~sink:Newton_telemetry.Stats.null
            ~switch_id:0 ()
        in
        let _ = Newton_runtime.Engine.install engine compiled in
        let t0 = Unix.gettimeofday () in
        List.iter (Newton_runtime.Engine.process_packet engine) packets;
        let engine_s = Unix.gettimeofday () -. t0 in
        ignore (Newton_runtime.Engine.drain_reports engine);
        let interp = Newton_p4sim.Interp.create program in
        Newton_p4sim.Interp.install interp
          (Newton_p4gen.Rules.entries_exn compiled);
        let t0 = Unix.gettimeofday () in
        List.iter
          (fun b -> ignore (Newton_p4sim.Interp.run interp b))
          bytes;
        let interp_s = Unix.gettimeofday () -. t0 in
        let engine_pps = rate n engine_s in
        let interp_pps = rate (List.length bytes) interp_s in
        let slowdown = if interp_pps > 0.0 then engine_pps /. interp_pps else 0.0 in
        Common.T.add_row t
          [
            Printf.sprintf "Q%d %s" q.Newton_query.Ast.id
              q.Newton_query.Ast.name;
            Printf.sprintf "%.0f" engine_pps;
            Printf.sprintf "%.0f" interp_pps;
            Printf.sprintf "%.1fx" slowdown;
          ];
        (q, engine_pps, interp_pps, slowdown))
      [ Newton_query.Catalog.q1 (); Newton_query.Catalog.q4 ();
        Newton_query.Catalog.q12 () ]
  in
  Common.T.print t;
  Common.note "phv synthesis: %.0f packets/s" synth_pps;
  Common.maybe_dat t "p4sim_throughput";
  let open Newton_util.Json in
  let json =
    Obj
      [
        ("bench", String "p4sim_throughput");
        ("packets", Int n);
        ("synth_pps", Float synth_pps);
        ( "queries",
          Obj
            (List.map
               (fun (q, e, i, s) ->
                 ( q.Newton_query.Ast.name,
                   Obj
                     [
                       ("engine_pps", Float e);
                       ("interp_pps", Float i);
                       ("slowdown", Float s);
                     ] ))
               per_query) );
      ]
  in
  let out = json_path () in
  let dir = Filename.dirname out in
  if dir <> "." && not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out out in
  output_string oc (to_string json);
  output_char oc '\n';
  close_out oc;
  Common.note "[json written to %s]" out
