(** newton — command-line front-end to the Newton monitoring system.

    Subcommands:
    - [queries]            list the built-in query catalog (Table 2)
    - [compile -q N]       show how a query compiles to module rules
    - [run -q N,M ...]     run queries on one switch over a synthetic trace
    - [netrun -q N ...]    deploy network-wide and run over a topology
    - [p4 emit|run|diff]   emit the newton.p4 pipeline + rules, interpret
                           it, and differentially test it against the
                           engine *)

open Cmdliner
open Newton
open Cli_terms

(* ---------------- queries ---------------- *)

let cmd_queries =
  let run () =
    List.iter
      (fun q ->
        Printf.printf "Q%d  %-22s %s\n" q.Query.id q.Query.name q.Query.description)
      (Catalog.all ())
  in
  Cmd.v (Cmd.info "queries" ~doc:"List the built-in query catalog (paper Table 2)")
    Term.(const run $ const ())

(* ---------------- compile ---------------- *)

let cmd_compile =
  let run ids show_slots =
    match lookup_queries ids with
    | Error msg -> prerr_endline msg; exit 2
    | Ok qs ->
        List.iter
          (fun q ->
            let base =
              Compiler.compile ~options:Compile_options.baseline_options q
            in
            let opt = Compiler.compile q in
            print_endline (Query.to_string q);
            Printf.printf
              "  naive: %d modules / %d stages; optimized: %d modules / %d \
               stages / %d table rules\n"
              base.Compiler.stats.Compiler.modules_naive
              base.Compiler.stats.Compiler.stages_naive
              opt.Compiler.stats.Compiler.modules_shared
              opt.Compiler.stats.Compiler.stages opt.Compiler.stats.Compiler.rules;
            if show_slots then
              Array.iteri
                (fun b slots ->
                  Printf.printf "  branch %d:\n" b;
                  List.iter
                    (fun s ->
                      Printf.printf "    %s\n" (Newton_compiler.Ir.slot_to_string s))
                    slots)
                opt.Compiler.branches;
            print_newline ())
          qs
  in
  let slots_arg =
    Arg.(value & flag & info [ "slots" ] ~doc:"Dump the module-slot layout.")
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile queries and show module/stage usage")
    Term.(const run $ queries_arg $ slots_arg)

(* ---------------- p4 (emission + interpretation) ---------------- *)

(* Shared vocabulary of the p4 subcommands: pipeline layout knobs and
   the Q1-Q17 selector. *)
let p4_stages_arg =
  Arg.(value & opt int Newton_p4gen.Emit.default_layout.Newton_p4gen.Emit.stages
       & info [ "stages" ] ~docv:"N" ~doc:"Stages in the emitted module layout.")

let p4_registers_arg =
  Arg.(value
       & opt int Newton_p4gen.Emit.default_layout.Newton_p4gen.Emit.registers
       & info [ "registers" ] ~docv:"N"
           ~doc:"32-bit words per allocated state array.")

let p4_all_arg =
  Arg.(value & flag
       & info [ "all" ] ~doc:"Select every catalog query (Q1-Q17).")

let p4_layout stages registers =
  { Newton_p4gen.Emit.default_layout with Newton_p4gen.Emit.stages; registers }

let p4_ids ids all =
  if all then
    List.map (fun q -> q.Query.id) (Catalog.all () @ Catalog.extras ())
  else ids

let write_file path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

let cmd_p4_emit =
  let run ids all program_out rules_out stages registers lint =
    let layout = p4_layout stages registers in
    match lookup_queries (p4_ids ids all) with
    | Error msg -> prerr_endline msg; exit 2
    | Ok qs ->
        (* One allocator across all queries so the deployment is
           co-resident: state arrays never overlap, and the register
           file is sized to the sum (never below the per-layout
           default, so single-query programs stay byte-identical). *)
        let alloc = Newton_p4gen.Rules.allocator ~state_words:max_int layout in
        let entries =
          List.concat
            (List.mapi
               (fun i q ->
                 let compiled = Compiler.compile q in
                 match
                   Newton_p4gen.Rules.entries ~class_id:(1 + (i * 10)) ~layout
                     ~alloc compiled
                 with
                 | Ok es -> es
                 | Error issue ->
                     Printf.eprintf "newton p4: Q%d has no rule encoding: %s\n"
                       q.Query.id
                       (Newton_p4gen.Rules.issue_to_string issue);
                     exit 1)
               qs)
        in
        let state_words =
          max
            (Newton_p4gen.Emit.state_words_of_layout layout)
            (Newton_p4gen.Rules.words_used alloc)
        in
        let program = Newton_p4gen.Emit.program ~layout ~state_words () in
        let rules_json = Newton_p4gen.Rules.to_json entries in
        (match program_out with
        | Some "-" | None -> print_string program
        | Some path ->
            write_file path program;
            Printf.eprintf "program (%d queries, %d state words) written to %s\n"
              (List.length qs) state_words path);
        (match rules_out with
        | Some path ->
            write_file path rules_json;
            Printf.eprintf "%d rule entries written to %s\n"
              (List.length entries) path
        | None -> ());
        if lint then begin
          match Newton_p4gen.Validate.check ~program ~rules_json with
          | [] ->
              Printf.eprintf "lint clean: %d entries against the emitted program\n"
                (List.length entries)
          | issues ->
              List.iter
                (fun i ->
                  Printf.eprintf "lint: %s\n"
                    (Newton_p4gen.Validate.issue_to_string i))
                issues;
              exit 1
        end
  in
  let program_out_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "program-out" ] ~docv:"FILE"
             ~doc:"Write the P4 program to a file instead of stdout ('-' for \
                   stdout).")
  in
  let rules_out_arg =
    Arg.(value & opt (some string) None
         & info [ "rules-out" ] ~docv:"FILE"
             ~doc:"Write the combined runtime rule JSON for the selected \
                   queries to a file.")
  in
  let lint_arg =
    Arg.(value & flag
         & info [ "lint" ]
             ~doc:"Validate the rule entries against the emitted program.")
  in
  Cmd.v
    (Cmd.info "emit"
       ~doc:
         "Emit the complete self-contained newton.p4 program (and the \
          runtime rule JSON configuring the selected queries on it)")
    Term.(
      const run $ queries_arg $ p4_all_arg $ program_out_arg $ rules_out_arg
      $ p4_stages_arg $ p4_registers_arg $ lint_arg)

(* Replay a packet list through the differential harness for each
   query, printing one line per query; returns the number of queries
   whose report multisets diverged (or had no rule encoding). *)
let p4_replay ~layout ~verbose qs packets =
  let bad = ref 0 in
  List.iter
    (fun q ->
      match Newton_p4sim.Diff.run_query ~layout q packets with
      | Error issue ->
          incr bad;
          Printf.printf "Q%d: no rule encoding: %s\n" q.Query.id
            (Newton_p4gen.Rules.issue_to_string issue)
      | Ok r ->
          if not (Newton_p4sim.Diff.matched r) then incr bad;
          print_endline (Newton_p4sim.Diff.describe r);
          if verbose then
            List.iter
              (fun (why, n) -> Printf.printf "    skipped %dx: %s\n" n why)
              r.Newton_p4sim.Diff.skip_reasons)
    qs;
  !bad

let cmd_p4_run =
  let run ids profile flows seed attacks verbose trace_in trace_out stages
      registers =
    match lookup_queries ids with
    | Error msg -> prerr_endline msg; exit 2
    | Ok qs ->
        reject_invalid qs;
        let layout = p4_layout stages registers in
        let trace = make_trace ?trace_in ?trace_out profile flows seed attacks in
        let packets = Array.to_list (Newton_trace.Gen.packets trace) in
        Printf.printf "trace: %d packets (%s)\n" (Trace.length trace)
          (Trace_profile.to_string (Trace.profile trace));
        List.iter
          (fun q ->
            match Newton_p4sim.Diff.run_query ~layout q packets with
            | Error issue ->
                Printf.eprintf "newton p4: Q%d has no rule encoding: %s\n"
                  q.Query.id
                  (Newton_p4gen.Rules.issue_to_string issue);
                exit 1
            | Ok r ->
                Printf.printf
                  "Q%d: %d/%d packets interpreted (%d unencodable), %d reports\n"
                  q.Query.id r.Newton_p4sim.Diff.replayed
                  r.Newton_p4sim.Diff.total r.Newton_p4sim.Diff.skipped
                  (List.length r.Newton_p4sim.Diff.p4_reports);
                if verbose then
                  List.iter
                    (fun rep ->
                      print_endline
                        ("  " ^ Newton_p4sim.Diff.report_to_string rep))
                    r.Newton_p4sim.Diff.p4_reports)
          qs
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Replay a trace through the interpreted P4 pipeline and print the \
          digest-decoded reports")
    Term.(
      const run $ queries_arg $ profile_arg $ flows_arg $ seed_arg
      $ attacks_arg $ verbose_arg $ trace_in_arg $ trace_out_arg
      $ p4_stages_arg $ p4_registers_arg)

let cmd_p4_diff =
  let run ids all coverage profile flows seed attacks verbose trace_in
      trace_out stages registers =
    match lookup_queries (p4_ids ids all) with
    | Error msg -> prerr_endline msg; exit 2
    | Ok qs ->
        reject_invalid qs;
        let layout = p4_layout stages registers in
        let packets =
          if coverage then Newton_p4sim.Corpus.coverage_packets ~seed ()
          else
            Array.to_list
              (Newton_trace.Gen.packets
                 (make_trace ?trace_in ?trace_out profile flows seed attacks))
        in
        Printf.printf "corpus: %d packets\n" (List.length packets);
        let bad = p4_replay ~layout ~verbose qs packets in
        if bad > 0 then begin
          Printf.eprintf "newton p4 diff: %d quer%s diverged\n" bad
            (if bad = 1 then "y" else "ies");
          exit 1
        end
  in
  let coverage_arg =
    Arg.(value & flag
         & info [ "coverage-corpus" ]
             ~doc:
               "Replay the pinned mixed v4/v6/ICMPv6/tunnel corpus on which \
                every catalog query reports at least once (overrides the \
                trace-shaping flags except --seed).")
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Differentially test the interpreted P4 pipeline against the \
          simulator engine: replay the same trace through both and require \
          identical report multisets (exit 1 on divergence)")
    Term.(
      const run $ queries_arg $ p4_all_arg $ coverage_arg $ profile_arg
      $ flows_arg $ seed_arg $ attacks_arg $ verbose_arg $ trace_in_arg
      $ trace_out_arg $ p4_stages_arg $ p4_registers_arg)

let cmd_p4 =
  Cmd.group
    (Cmd.info "p4"
       ~doc:
         "Emit the static newton.p4 pipeline and runtime rules, interpret \
          it, and differentially test it against the simulator engine")
    [ cmd_p4_emit; cmd_p4_run; cmd_p4_diff ]

(* ---------------- run (device level) ---------------- *)

(* One query: shard on its aggregation key so shard-merged results
   match the sequential engine; several queries: 5-tuple sharding
   (divergence documented in docs/PARALLELISM.md). *)
let shard_key_for qs =
  match qs with
  | [ q ] -> Newton_runtime.Shard.for_compiled (Compiler.compile q)
  | _ ->
      Printf.printf
        "note: several queries — 5-tuple sharding; cross-flow aggregates \
         split across shards (docs/PARALLELISM.md)\n";
      Newton_runtime.Shard.Flow

let cmd_run =
  let run ids dsl profile flows seed attacks verbose trace_in trace_out jobs
      batch pcap iopts =
    (* The pcap path never consults the synthetic-trace files; accepting
       them silently would e.g. leave a --trace-out target unwritten. *)
    if pcap <> None && (trace_in <> None || trace_out <> None) then begin
      prerr_endline "newton: --pcap cannot be combined with --trace-in/--trace-out";
      exit 1
    end;
    match gather_queries ids dsl with
    | Error msg -> prerr_endline msg; exit 2
    | Ok qs ->
        reject_invalid qs;
        (* Set up the engine (sequential or sharded) behind a chunk sink
           so both the synthetic and the pcap-streaming path feed it the
           same way. *)
        let sink_fn, finish =
          if jobs = 1 then begin
            let device = Device.create () in
            List.iter
              (fun q ->
                let _, lat = Device.add_query device q in
                Printf.printf "installed Q%d (%s) in %.1f ms\n" q.Query.id
                  q.Query.name (lat *. 1e3))
              qs;
            ( (fun batch -> Array.iter (Device.process_packet device) batch),
              fun () -> Device.reports device )
          end
          else begin
            let shard_key = shard_key_for qs in
            let pdev = Parallel_device.create ~jobs ~batch ~shard_key () in
            List.iter
              (fun q ->
                ignore (Parallel_device.add_query pdev q);
                Printf.printf "installed Q%d (%s) on %d shards\n" q.Query.id
                  q.Query.name jobs)
              qs;
            ( Parallel_device.process_packets pdev,
              fun () ->
                Printf.printf "shard loads: [%s] (%s)\n"
                  (String.concat "; "
                     (Array.to_list
                        (Array.map string_of_int
                           (Parallel_device.shard_loads pdev))))
                  (Newton_runtime.Parallel_engine.to_string
                     (Parallel_device.engine pdev));
                Parallel_device.reports pdev )
          end
        in
        let n_packets =
          match pcap with
          | Some path ->
              let stats = Telemetry.Stats.create () in
              let summary = stream_pcap ~opts:iopts ~stats path sink_fn in
              print_ingest_summary stats summary;
              summary.Ingest.Stream.delivered
          | None ->
              let trace =
                make_trace ?trace_in ?trace_out profile flows seed attacks
              in
              Printf.printf "trace: %d packets (%s)\n" (Trace.length trace)
                (Trace_profile.to_string (Trace.profile trace));
              Trace.iter_chunks ~chunk:iopts.io_chunk sink_fn trace;
              Trace.length trace
        in
        let reports = finish () in
        Printf.printf "monitoring messages: %d (%.4f%% of packets)\n"
          (List.length reports)
          (100.0 *. float_of_int (List.length reports)
          /. float_of_int (max 1 n_packets));
        if verbose then
          List.iter (fun r -> print_endline ("  " ^ Report.to_string r)) reports
        else begin
          print_string (Newton_query.Series.summary (Newton_query.Series.of_reports reports));

          List.iter
            (fun q ->
              let mine =
                List.filter (fun r -> r.Report.query_id = q.Query.id) reports
              in
              let keys = Report.reported_keys mine in
              Printf.printf "  Q%d: %d reports, %d distinct keys%s\n" q.Query.id
                (List.length mine) (List.length keys)
                (match keys with
                | k :: _ when Array.length k > 0 ->
                    Printf.sprintf " (first: %s)" (Packet.ip_to_string k.(0))
                | _ -> ""))
            qs
        end
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run queries on a single switch over a synthetic trace or an \
          ingested pcap capture")
    Term.(
      const run $ queries_arg $ dsl_arg $ profile_arg $ flows_arg $ seed_arg
      $ attacks_arg $ verbose_arg $ trace_in_arg $ trace_out_arg $ jobs_arg
      $ batch_arg $ pcap_arg $ ingest_opts_term)

(* ---------------- stats (telemetry snapshot) ---------------- *)

let cmd_stats =
  let run ids dsl profile flows seed attacks trace_in jobs batch format output
      pcap iopts =
    if pcap <> None && trace_in <> None then begin
      prerr_endline "newton: --pcap cannot be combined with --trace-in";
      exit 1
    end;
    match gather_queries ids dsl with
    | Error msg -> prerr_endline msg; exit 2
    | Ok qs ->
        reject_invalid qs;
        let sink_fn, metrics_fn =
          if jobs = 1 then begin
            let device = Device.create () in
            List.iter (fun q -> ignore (Device.add_query device q)) qs;
            ( (fun batch -> Array.iter (Device.process_packet device) batch),
              fun () -> Device.metrics device )
          end
          else begin
            let shard_key =
              match qs with
              | [ q ] -> Newton_runtime.Shard.for_compiled (Compiler.compile q)
              | _ -> Newton_runtime.Shard.Flow
            in
            let pdev = Parallel_device.create ~jobs ~batch ~shard_key () in
            List.iter (fun q -> ignore (Parallel_device.add_query pdev q)) qs;
            ( Parallel_device.process_packets pdev,
              fun () -> Parallel_device.metrics pdev )
          end
        in
        let snap =
          match pcap with
          | Some path ->
              (* Ingestion health rides along in the same snapshot,
                 labelled stage=ingest to keep it apart from the
                 engine-side counter families. *)
              let stats = Telemetry.Stats.create () in
              ignore (stream_pcap ~opts:iopts ~stats path sink_fn);
              Telemetry.Snapshot.merge (metrics_fn ())
                (Telemetry.Snapshot.of_sink
                   ~labels:[ ("stage", "ingest") ]
                   stats)
          | None ->
              let trace = make_trace ?trace_in profile flows seed attacks in
              Trace.iter_chunks ~chunk:iopts.io_chunk sink_fn trace;
              metrics_fn ()
        in
        let text =
          match format with
          | `Json -> Telemetry.Export.to_json_string snap ^ "\n"
          | `Prometheus -> Telemetry.Export.to_prometheus snap
        in
        match output with
        | Some path ->
            let oc = open_out path in
            output_string oc text;
            close_out oc;
            Printf.eprintf "stats written to %s\n" path
        | None -> print_string text
  in
  let format_arg =
    Arg.(value
         & opt (enum [ ("json", `Json); ("prometheus", `Prometheus); ("prom", `Prometheus) ]) `Json
         & info [ "format" ] ~docv:"FMT"
             ~doc:"Output format: json or prometheus.")
  in
  let output_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"Write the snapshot to a file instead of stdout.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run queries over a trace and export the telemetry snapshot \
          (counters, rule utilization, sketch health) as JSON or Prometheus \
          text")
    Term.(
      const run $ queries_arg $ dsl_arg $ profile_arg $ flows_arg $ seed_arg
      $ attacks_arg $ trace_in_arg $ jobs_arg $ batch_arg $ format_arg
      $ output_arg $ pcap_arg $ ingest_opts_term)

(* ---------------- netrun (network-wide) ---------------- *)

let fail_arg =
  Arg.(value & opt (some (pair int int)) None
       & info [ "fail-link" ] ~docv:"A,B"
           ~doc:"Fail the switch link (A,B) halfway through the trace.")

(* ---------------- check (static analysis) ---------------- *)

let cmd_check =
  let run ids dsl all json strict output topo stages registers expected_keys
      witness shard_fields =
    (* No explicit selection means "check everything", like --all. *)
    let whole_catalog = all || (ids = [] && dsl = []) in
    let queries =
      match gather_queries (if whole_catalog then [] else ids) dsl with
      | Error msg ->
          prerr_endline msg;
          exit 2
      | Ok qs ->
          if whole_catalog then Catalog.all () @ Catalog.extras () @ qs else qs
    in
    let shard =
      match shard_fields with
      | None -> None
      | Some spec -> (
          let names =
            List.filter (fun s -> s <> "")
              (String.split_on_char ',' spec)
          in
          match List.map Field.of_string names with
          | [] ->
              prerr_endline "check: --shard-fields needs at least one field";
              exit 2
          | fields -> Some (Analysis.Pass.Shard_fields fields)
          | exception Invalid_argument msg ->
              Printf.eprintf "check: --shard-fields: %s\n" msg;
              exit 2)
    in
    let cfg =
      {
        Analysis.Pass.default_config with
        Analysis.Pass.options =
          { Compile_options.default_options with Compile_options.registers };
        expected_keys;
        shard;
      }
    in
    (* Mirrors [Analysis.Check.check_queries] — each query sees the
       others as peers/co-residents — but adds a per-query placement
       target when --topo is given, so slice-boundary and switch
       commitment checks run against the actual deployment shape. *)
    let compiled =
      List.map
        (fun q ->
          ( q,
            match Compiler.compile ~options:cfg.Analysis.Pass.options q with
            | c -> Some c
            | exception _ -> None ))
        queries
    in
    let diags =
      List.concat_map
        (fun (q, c) ->
          let peers = List.filter (fun (p, _) -> p != q) compiled in
          let co_resident = List.filter_map snd peers in
          let target =
            match (topo, c) with
            | Some topo, Some c -> (
                try
                  Some
                    (Newton_controller.Deploy.target_of_placement
                       (Newton_controller.Placement.place
                          ~stages_per_switch:stages ~topo c))
                with _ -> None)
            | _ -> None
          in
          Analysis.Check.check_query ~cfg ?target ~peers ~co_resident q)
        compiled
    in
    let diags = List.sort Analysis.Diag.compare diags in
    let e, w, i = Analysis.Check.severity_counts diags in
    let text =
      if json then
        Newton_util.Json.to_string
          (Analysis.Check.report_to_json ~witness diags)
        ^ "\n"
      else
        (if diags = [] then ""
         else Analysis.Check.explain ~witness diags ^ "\n")
        ^ Printf.sprintf "checked %d queries: %d errors, %d warnings, %d infos\n"
            (List.length queries) e w i
    in
    (match output with
    | Some path ->
        let oc = open_out path in
        output_string oc text;
        close_out oc;
        Printf.eprintf "check report written to %s\n" path
    | None -> print_string text);
    exit (Analysis.Check.exit_code ~strict diags)
  in
  let check_queries_arg =
    Arg.(value & opt (list int) []
         & info [ "q"; "queries" ] ~docv:"IDS"
             ~doc:"Comma-separated catalog query ids to check (default: the \
                   whole catalog).")
  in
  let all_arg =
    Arg.(value & flag
         & info [ "all" ]
             ~doc:"Check the full catalog (Q1-Q9) plus the extension queries.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
  in
  let strict_arg =
    Arg.(value & flag
         & info [ "strict" ]
             ~doc:"Treat warnings as errors: any warning makes the exit code 2.")
  in
  let output_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"Write the report to a file instead of stdout.")
  in
  let check_topo_arg =
    Arg.(value & opt (some topo_conv) None
         & info [ "topo" ] ~docv:"TOPO"
             ~doc:"Also verify placement against a topology (linear:N, \
                   fat-tree:K, bypass[:S:L], or isp); off by default.")
  in
  let registers_arg =
    Arg.(value
         & opt int Compile_options.default_options.Compile_options.registers
         & info [ "registers" ] ~docv:"N"
             ~doc:"Registers per state-bank array assumed by the sketch-health \
                   pass.")
  in
  let keys_arg =
    Arg.(value & opt int Analysis.Pass.default_config.Analysis.Pass.expected_keys
         & info [ "expected-keys" ] ~docv:"N"
             ~doc:"Expected distinct keys per window, used for sketch \
                   false-positive estimates.")
  in
  let witness_arg =
    Arg.(value & flag
         & info [ "witness" ]
             ~doc:"Print (and embed in JSON) the concrete witness packets the \
                   exact packet-space passes attach to their findings.")
  in
  let shard_fields_arg =
    Arg.(value & opt (some string) None
         & info [ "shard-fields" ] ~docv:"FIELDS"
             ~doc:"Assume the replay path shards by hashing these \
                   comma-separated header fields (e.g. dip,proto) and verify \
                   every stateful primitive's per-key state stays within one \
                   domain (NA095).")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Statically verify queries (structure, field widths, predicates, \
          exact packet-space satisfiability/overlap, dataflow, thresholds, \
          sketch health, capacity, conflicts, shard coverage, cross-cut \
          ordering) and report structured diagnostics")
    Term.(
      const run $ check_queries_arg $ dsl_arg $ all_arg $ json_arg $ strict_arg
      $ output_arg $ check_topo_arg $ stages_arg $ registers_arg $ keys_arg
      $ witness_arg $ shard_fields_arg)

let cmd_netrun =
  let run ids topo stages profile flows seed attacks fail pcap =
    match lookup_queries ids with
    | Error msg -> prerr_endline msg; exit 2
    | Ok qs ->
        reject_invalid qs;
        let net = Network.create topo in
        Printf.printf "topology: %s\n" (Topo.to_string topo);
        (try
           List.iter
             (fun q ->
               let _, lat = Network.add_query net ~stages_per_switch:stages q in
               Printf.printf "deployed Q%d network-wide in %.1f ms\n" q.Query.id
                 (lat *. 1e3))
             qs
         with Newton_controller.Deploy.Rejected diags ->
           prerr_endline (Analysis.Check.explain diags);
           prerr_endline "newton: deployment rejected by static analysis";
           exit 2);
        let trace = make_trace ?pcap_in:pcap profile flows seed attacks in
        Network.process_trace net trace;
        (match fail with
        | None -> ()
        | Some (a, b) ->
            Printf.printf "failing link (%d,%d) and replaying...\n" a b;
            Network.fail_link net (a, b);
            Network.process_trace net trace);
        Printf.printf "monitoring messages: %d; SP bandwidth overhead: %.3f%%\n"
          (Network.message_count net)
          (100.0 *. Network.sp_overhead_ratio net);
        let keys = Report.reported_keys (Network.reports net) in
        Printf.printf "distinct reported keys: %d\n" (List.length keys)
  in
  Cmd.v (Cmd.info "netrun" ~doc:"Deploy queries network-wide and run a trace")
    Term.(
      const run $ queries_arg $ topo_arg $ stages_arg $ profile_arg $ flows_arg
      $ seed_arg $ attacks_arg $ fail_arg $ pcap_arg)

(* ---------------- chaos (failure-injection differential) ---------------- *)

let cmd_chaos =
  let run ids topo stages profile flows seed attacks fails repairs strict
      output pcap =
    match lookup_queries ids with
    | Error msg -> prerr_endline msg; exit 2
    | Ok qs ->
        let trace = make_trace ?pcap_in:pcap profile flows seed attacks in
        let pkts = Trace.packets trace in
        if Array.length pkts = 0 then begin
          prerr_endline "chaos: empty trace";
          exit 1
        end;
        let t_last = Packet.ts pkts.(Array.length pkts - 1) in
        let events =
          let at frac = frac *. t_last in
          List.map
            (fun (s, f) -> { Chaos.at = at f; switch = s; action = `Fail })
            fails
          @ List.map
              (fun (s, f) -> { Chaos.at = at f; switch = s; action = `Repair })
              repairs
        in
        let events =
          if events <> [] then events
          else
            (* Default schedule: fail the lowest-id non-edge switch
               halfway through the trace. *)
            let edges = Topo.edge_switches topo in
            match
              List.find_opt (fun s -> not (List.mem s edges)) (Topo.switches topo)
            with
            | Some s ->
                Printf.eprintf "chaos: no schedule given; failing switch %d at 50%%\n" s;
                [ { Chaos.at = t_last /. 2.0; switch = s; action = `Fail } ]
            | None ->
                prerr_endline "chaos: no non-edge switch to fail; use --fail";
                exit 1
        in
        let res =
          Chaos.run ~stages_per_switch:stages ~topo ~queries:qs ~events trace
        in
        let unexpl = List.length (Chaos.unexplained res) in
        Printf.printf
          "topology: %s\nbaseline reports: %d\nchaos reports: %d\nmatched: %d\n\
           diffs: %d (%d unexplained)\n"
          (Topo.name topo) res.Chaos.baseline_reports res.Chaos.chaos_reports
          res.Chaos.matched
          (List.length res.Chaos.diffs)
          unexpl;
        List.iter
          (fun (r : Network.Deploy.recovery) ->
            Printf.printf
              "%s switch %d: %d slices migrated, %d cells moved, %d software \
               fallbacks, %d rules installed, %.2f ms\n"
              (match r.Network.Deploy.r_event with `Fail -> "fail" | `Repair -> "repair")
              r.Network.Deploy.r_switch r.Network.Deploy.r_slices_migrated
              r.Network.Deploy.r_cells_moved r.Network.Deploy.r_software_fallbacks
              r.Network.Deploy.r_rules_installed
              (r.Network.Deploy.r_latency *. 1e3))
          res.Chaos.recoveries;
        (match output with
        | Some path ->
            let oc = open_out path in
            output_string oc (Chaos.to_json_string res);
            output_string oc "\n";
            close_out oc;
            Printf.eprintf "chaos diff written to %s\n" path
        | None -> print_endline (Chaos.to_json_string res));
        if strict && unexpl > 0 then begin
          Printf.eprintf "chaos: %d unexplained report diffs\n" unexpl;
          exit 1
        end
  in
  let all_queries_arg =
    let doc = "Comma-separated query ids (default: the full catalog)." in
    Arg.(value
         & opt (list int) (List.map (fun q -> q.Query.id) (Catalog.all ()))
         & info [ "q"; "queries" ] ~docv:"IDS" ~doc)
  in
  let chaos_topo_arg =
    Arg.(value & opt topo_conv (Topo.bypass ())
         & info [ "topo" ] ~docv:"TOPO"
             ~doc:"Topology: linear:N, fat-tree:K, bypass[:S:L], or isp. \
                   The default bypass topology reroutes deterministically, \
                   so unexplained diffs indicate real monitoring loss.")
  in
  let chaos_stages_arg =
    Arg.(value & opt int 4
         & info [ "stages-per-switch" ] ~docv:"N"
             ~doc:"Stages each switch grants Newton; small values force \
                   multi-slice placements that exercise state migration.")
  in
  let fail_events_arg =
    Arg.(value & opt_all (pair ~sep:'@' int float) []
         & info [ "fail" ] ~docv:"SWITCH@FRAC"
             ~doc:"Fail a switch at a fraction of the trace duration \
                   (e.g. 2@0.5); repeatable.")
  in
  let repair_events_arg =
    Arg.(value & opt_all (pair ~sep:'@' int float) []
         & info [ "repair" ] ~docv:"SWITCH@FRAC"
             ~doc:"Repair a switch at a fraction of the trace duration; \
                   repeatable.")
  in
  let strict_arg =
    Arg.(value & flag
         & info [ "strict" ]
             ~doc:"Exit non-zero if any report diff is unexplained.")
  in
  let output_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"Write the JSON diff artifact to a file instead of stdout.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Replay a trace with a switch fail/repair schedule and diff the \
          reports against a failure-free run")
    Term.(
      const run $ all_queries_arg $ chaos_topo_arg $ chaos_stages_arg
      $ profile_arg $ flows_arg $ seed_arg $ attacks_arg $ fail_events_arg
      $ repair_events_arg $ strict_arg $ output_arg $ pcap_arg)

(* ---------------- gen (trace generation / export) ---------------- *)

let cmd_gen =
  let run profile flows seed attacks trace_in output format =
    let trace = make_trace ?trace_in profile flows seed attacks in
    let format =
      match format with
      | Some f -> f
      | None -> (
          (* Infer from the output extension when --format is omitted. *)
          match Filename.extension output with
          | ".pcap" | ".pcapng" | ".cap" -> `Pcap
          | _ -> `Ntrc)
    in
    (match format with
    | `Ntrc -> Newton_trace.Trace_io.save trace output
    | `Pcap -> (
        try Ingest.Capture.export trace output
        with Ingest.Capture.Format_error m ->
          Printf.eprintf "pcap export: %s\n" m;
          exit 1));
    Printf.printf "%d packets written to %s (%s)\n" (Trace.length trace)
      output
      (match format with `Ntrc -> "ntrc" | `Pcap -> "pcap")
  in
  let output_arg =
    Arg.(required & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")
  in
  let format_arg =
    Arg.(value
         & opt (some (enum [ ("ntrc", `Ntrc); ("pcap", `Pcap) ])) None
         & info [ "format" ] ~docv:"FMT"
             ~doc:"Output format: ntrc (native binary trace) or pcap \
                   (standard capture, opens in tcpdump/Wireshark). Default: \
                   inferred from the output extension, ntrc otherwise.")
  in
  Cmd.v
    (Cmd.info "gen"
       ~doc:
         "Generate a synthetic trace (or convert one given with --trace-in) \
          and write it as a native trace or a standard pcap file")
    Term.(
      const run $ profile_arg $ flows_arg $ seed_arg $ attacks_arg
      $ trace_in_arg $ output_arg $ format_arg)

(* ---------------- pcap-info ---------------- *)

let cmd_pcap_info =
  let run path =
    match Ingest.Capture.info path with
    | exception Ingest.Capture.Format_error m ->
        Printf.eprintf "pcap: %s: %s\n" path m;
        exit 1
    | i ->
        let open Ingest.Capture in
        Printf.printf "file:       %s\n" path;
        Printf.printf "format:     %s%s\n"
          (format_to_string i.format)
          (match (i.big_endian, i.nsec) with
          | Some be, Some ns ->
              Printf.sprintf " (%s-endian, %s timestamps)"
                (if be then "big" else "little")
                (if ns then "nanosecond" else "microsecond")
          | _ -> "");
        if i.format = Pcapng_format then
          Printf.printf "interfaces: %d\n" i.interfaces
        else begin
          Printf.printf "linktype:   %d%s\n" i.linktype
            (if i.linktype = Ingest.Pcap.linktype_ethernet then " (ethernet)"
             else "");
          Printf.printf "snaplen:    %d\n" i.snaplen
        end;
        Printf.printf "frames:     %d%s\n" i.frames
          (if i.clean_end then "" else " (file cut mid-record)");
        Printf.printf "decoded:    %d\n" i.decoded;
        Printf.printf
          "skipped:    %d non-ip, %d truncated, %d fragment, %d malformed\n"
          i.non_ip i.truncated i.fragment i.malformed;
        (match (i.first_ts, i.last_ts) with
        | Some a, Some b ->
            Printf.printf "timespan:   %.6f .. %.6f s (%.6f s)\n" a b (b -. a)
        | _ -> ())
  in
  let file_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE" ~doc:"Capture file to inspect.")
  in
  Cmd.v
    (Cmd.info "pcap-info"
       ~doc:
         "Inspect a pcap/pcapng capture: format details plus decode \
          accounting (frames, decoded, skipped)")
    Term.(const run $ file_arg)

(* ---------------- shell (interactive operator console) ---------------- *)

let cmd_shell =
  let run () =
    let device = Device.create () in
    let handles : (int, handle) Hashtbl.t = Hashtbl.create 8 in
    let next_id = ref 1 in
    let shown_reports = ref 0 in
    let help () =
      print_string
        "commands:\n\
        \  install q<N>         install catalog query N (1-9 paper, 10-17 extensions)\n\
        \  install <dsl>        install an ad-hoc DSL query\n\
        \  remove <id>          remove an installed query\n\
        \  list                 installed queries\n\
        \  stats [json|prom]    runtime statistics: per-instance lines plus\n\
        \                       counters and sketch-health gauges; json/prom\n\
        \                       dumps the full telemetry snapshot\n\
        \  gen [flows] [seed]   generate an attack trace and run it\n\
        \  reports              print reports since the last call\n\
        \  help | quit\n"
    in
    let install q =
      let h, lat = Device.add_query device q in
      let id = !next_id in
      incr next_id;
      Hashtbl.replace handles id h;
      Printf.printf "installed #%d (%s) in %.1f ms\n%!" id q.Query.name (lat *. 1e3)
    in
    let handle_line line =
      match Service.Command.tokenize line with
      | Error m ->
          Printf.printf "parse error: %s\n%!" m;
          true
      | Ok tokens -> (
          match tokens with
          | [] -> true
        | [ "quit" ] | [ "exit" ] -> false
        | [ "help" ] -> help (); true
        | "install" :: rest -> (
            let arg = String.concat " " rest in
            (if String.length arg > 1 && arg.[0] = 'q'
                && String.for_all (fun c -> c >= '0' && c <= '9')
                     (String.sub arg 1 (String.length arg - 1))
             then
               match
                 Catalog.find
                   (int_of_string (String.sub arg 1 (String.length arg - 1)))
               with
               | Some q -> install q
               | None ->
                   Printf.printf "no catalog query %s (valid: q%d-q%d)\n%!" arg
                     Catalog.min_id Catalog.max_id
             else
               match Newton_query.Parser.parse_result ~id:(90 + !next_id) arg with
               | Ok q -> install q
               | Error m -> Printf.printf "parse error: %s\n%!" m);
            true)
        | [ "remove"; id ] -> (
            (match int_of_string_opt id with
            | Some id -> (
                match Hashtbl.find_opt handles id with
                | Some h -> (
                    match Device.remove_query device h with
                    | Some lat ->
                        Hashtbl.remove handles id;
                        Printf.printf "removed #%d in %.1f ms\n%!" id (lat *. 1e3)
                    | None -> print_endline "remove failed")
                | None -> Printf.printf "no query #%d\n%!" id)
            | None -> print_endline "usage: remove <id>");
            true)
        | [ "list" ] ->
            Hashtbl.iter
              (fun id (h : handle) ->
                Printf.printf "  #%d %s: %s\n" id h.query.Query.name
                  h.query.Query.description)
              handles;
            print_string "";
            true
        | [ "stats" ] ->
            List.iter
              (fun s ->
                print_endline ("  " ^ Newton_runtime.Engine.stats_to_string s))
              (Newton_runtime.Engine.stats (Device.engine device));
            let snap = Device.metrics device in
            let show name =
              match Telemetry.Snapshot.find name snap with
              | None -> ()
              | Some m ->
                  List.iter
                    (fun (s : Telemetry.Metric.sample) ->
                      match s.Telemetry.Metric.value with
                      | Telemetry.Metric.V f ->
                          Printf.printf "  %s%s %s\n" name
                            (Telemetry.Metric.labels_to_string
                               s.Telemetry.Metric.labels)
                            (Telemetry.Metric.string_of_value f)
                      | Telemetry.Metric.Buckets _ -> ())
                    m.Telemetry.Metric.samples
            in
            List.iter show
              [
                "newton_packets_processed_total";
                "newton_module_hits_total";
                "newton_reports_emitted_total";
                "newton_reports_deduped_total";
                "newton_reports_dropped_total";
                "newton_monitor_rules";
                "newton_module_cell_utilization";
                "newton_bloom_fill_ratio";
                "newton_bloom_fpr_estimate";
                "newton_cm_error_bound";
              ];
            true
        | [ "stats"; "json" ] ->
            print_endline (Telemetry.Export.to_json_string (Device.metrics device));
            true
        | [ "stats"; "prom" ] ->
            print_string (Telemetry.Export.to_prometheus (Device.metrics device));
            true
        | "gen" :: rest -> (
            let flows =
              match rest with f :: _ -> Option.value (int_of_string_opt f) ~default:2000 | [] -> 2000
            in
            let seed =
              match rest with _ :: s :: _ -> Option.value (int_of_string_opt s) ~default:42 | _ -> 42
            in
            let trace =
              Trace.generate ~attacks:Newton_trace.Attack.default_suite ~seed
                (Trace_profile.with_flows Trace_profile.caida_like flows)
            in
            Device.process_trace device trace;
            Printf.printf "ran %d packets; %d total reports\n%!" (Trace.length trace)
              (Device.message_count device);
            true)
        | [ "reports" ] ->
            let all = Device.reports device in
            let fresh = List.filteri (fun i _ -> i >= !shown_reports) all in
            shown_reports := List.length all;
            List.iter (fun r -> print_endline ("  " ^ Report.to_string r)) fresh;
            Printf.printf "(%d new)\n%!" (List.length fresh);
            true
        | _ ->
            print_endline "unknown command (try help)";
            true)
    in
    print_endline "newton shell — 'help' for commands";
    let rec loop () =
      print_string "newton> ";
      match In_channel.input_line stdin with
      | None -> ()
      | Some line -> if handle_line line then loop ()
    in
    loop ()
  in
  Cmd.v (Cmd.info "shell" ~doc:"Interactive operator console on one switch")
    Term.(const run $ const ())

(* ---------------- serve / intent (controller daemon) ---------------- *)

let socket_arg =
  Arg.(value & opt (some string) None
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix-domain socket path (default newton.sock unless --port \
                 is given).")

let port_arg =
  Arg.(value & opt (some int) None
       & info [ "port" ] ~docv:"PORT"
           ~doc:"Use 127.0.0.1:PORT instead of a Unix socket.")

let listen_of socket port =
  match (socket, port) with
  | Some _, Some _ ->
      prerr_endline "newton: --socket and --port are mutually exclusive";
      exit 1
  | None, Some p -> Service.Daemon.Tcp p
  | Some path, None -> Service.Daemon.Unix_socket path
  | None, None -> Service.Daemon.Unix_socket "newton.sock"

let cmd_serve =
  let run socket port topo stages preload dsl pcap trace_in gen_trace profile
      flows seed attacks iopts =
    let pace =
      match iopts.io_pace with
      | `Asap -> Service.Replay.Asap
      | `Realtime -> Service.Replay.Realtime iopts.io_speedup
    in
    let replay =
      match (pcap, trace_in) with
      | Some _, Some _ ->
          prerr_endline "newton: --pcap cannot be combined with --trace-in";
          exit 1
      | Some path, None | None, Some path -> (
          try Some (Service.Replay.load ~pace ~topo path)
          with Ingest.Capture.Format_error m ->
            Printf.eprintf "pcap: %s: %s\n" path m;
            exit 1)
      | None, None ->
          if not gen_trace then None
          else begin
            let trace =
              Trace.generate ~attacks ~seed
                (Trace_profile.with_flows (profile_of profile) flows)
            in
            Some
              (Service.Replay.of_trace ~pace ~topo
                 ~desc:(Printf.sprintf "synthetic(flows=%d,seed=%d)" flows seed)
                 trace)
          end
    in
    let daemon =
      Service.Daemon.create ~stages_per_switch:stages
        ~replay_budget:iopts.io_chunk ?replay topo
    in
    Printf.printf "topology: %s\n%!" (Topo.to_string topo);
    (match replay with
    | Some r ->
        Printf.printf "replay: %s (%d packets)\n%!" (Service.Replay.source r)
          (Service.Replay.length r)
    | None -> ());
    (* Intents named on the command line are submitted before the loop
       starts, so the daemon comes up monitoring. *)
    List.iter
      (fun spec ->
        let resp =
          Service.Daemon.handle daemon
            (Service.Api.Submit { spec; name = None })
        in
        print_endline (Service.Api.response_summary resp);
        if not (Service.Api.response_is_ok resp) then exit 2)
      (List.map (fun n -> Service.Api.Catalog n) preload
      @ List.map (fun text -> Service.Api.Dsl text) dsl);
    Service.Daemon.serve ~log:print_endline daemon (listen_of socket port)
  in
  let preload_arg =
    Arg.(value & opt (list int) []
         & info [ "q"; "queries" ] ~docv:"IDS"
             ~doc:"Catalog query ids submitted as intents at startup.")
  in
  let gen_trace_arg =
    Arg.(value & flag
         & info [ "gen-trace" ]
             ~doc:"Replay a synthetic trace (--profile/--flows/--seed/\
                   --attacks) when no --pcap/--trace-in is given.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the long-running controller daemon: newline-delimited JSON \
          (or plain operator text) over a Unix/TCP socket, with intents \
          installing and withdrawing while a background trace or pcap \
          replays through the deployment")
    Term.(
      const run $ socket_arg $ port_arg $ topo_arg $ stages_arg $ preload_arg
      $ dsl_arg $ pcap_arg $ trace_in_arg $ gen_trace_arg $ profile_arg
      $ flows_arg $ seed_arg $ attacks_arg $ ingest_opts_term)

let cmd_intent =
  let run socket port json words =
    match Service.Api.request_of_tokens words with
    | Error m ->
        Printf.eprintf
          "newton intent: %s\nusage: newton intent submit q4 | submit <dsl> \
           [as <name>] | withdraw <id> | status <id> | list | stats \
           [json|prom] | fail-switch <s> | repair-switch <s> | shutdown\n"
          m;
        exit 2
    | Ok request -> (
        let domain, addr =
          match listen_of socket port with
          | Service.Daemon.Unix_socket path ->
              (Unix.PF_UNIX, Unix.ADDR_UNIX path)
          | Service.Daemon.Tcp p ->
              (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_loopback, p))
        in
        let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
        (try Unix.connect fd addr
         with Unix.Unix_error (e, _, _) ->
           Printf.eprintf "newton intent: cannot reach daemon: %s\n"
             (Unix.error_message e);
           exit 1);
        let oc = Unix.out_channel_of_descr fd in
        let ic = Unix.in_channel_of_descr fd in
        output_string oc (Service.Api.request_to_line request ^ "\n");
        flush oc;
        match input_line ic with
        | exception End_of_file ->
            prerr_endline "newton intent: daemon closed the connection";
            exit 1
        | line -> (
            if json then print_endline line;
            match Service.Api.response_of_line line with
            | Error m ->
                Printf.eprintf "newton intent: bad response: %s\n" m;
                exit 1
            | Ok resp ->
                if not json then print_endline (Service.Api.response_summary resp);
                exit (if Service.Api.response_is_ok resp then 0 else 1)))
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Print the raw JSON response line.")
  in
  let words_arg =
    Arg.(value & pos_all string []
         & info [] ~docv:"COMMAND"
             ~doc:"Operator command, e.g. submit q4 | withdraw 1 | list | \
                   stats prom | shutdown.")
  in
  Cmd.v
    (Cmd.info "intent"
       ~doc:
         "Drive a running newton serve daemon: submit/withdraw intents, \
          inspect their lifecycle, scrape stats, inject switch failures")
    Term.(const run $ socket_arg $ port_arg $ json_arg $ words_arg)

let () =
  let info =
    Cmd.info "newton" ~version:"1.0.0"
      ~doc:"Intent-driven network traffic monitoring (CoNEXT'20 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            cmd_queries;
            cmd_check;
            cmd_compile;
            cmd_p4;
            cmd_run;
            cmd_stats;
            cmd_netrun;
            cmd_chaos;
            cmd_gen;
            cmd_pcap_info;
            cmd_shell;
            cmd_serve;
            cmd_intent;
          ]))
