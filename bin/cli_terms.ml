(** Shared Cmdliner vocabulary for the [newton] subcommands.

    Every term that more than one subcommand takes — query selection,
    trace shaping, topology, sharding, pcap ingestion — lives here
    once, so [run]/[stats]/[netrun]/[chaos]/[serve] cannot drift apart
    in flag names, defaults or validation. *)

open Cmdliner
open Newton

(* ---------------- query selection ---------------- *)

let queries_arg =
  let doc =
    "Comma-separated query ids (1-9 paper, 10-17 extensions) from the catalog."
  in
  Arg.(value & opt (list int) [ 1 ] & info [ "q"; "queries" ] ~docv:"IDS" ~doc)

let dsl_arg =
  let doc =
    "Ad-hoc queries in the textual DSL (repeatable), e.g. \
     'filter(proto == udp) | map(dip) | reduce(dip, count) | filter(count > \
     100) | map(dip)'."
  in
  Arg.(value & opt_all string [] & info [ "query" ] ~docv:"DSL" ~doc)

let lookup_queries ids =
  try Ok (List.map Catalog.by_id ids)
  with Catalog.Unknown_id { id; min; max } ->
    Error
      (Printf.sprintf "newton: no catalog query Q%d; valid ids are %d-%d" id
         min max)

(* Combine catalog ids and ad-hoc DSL queries; ad-hoc queries get ids
   from 100 upward. *)
let gather_queries ids dsl =
  match lookup_queries ids with
  | Error msg -> Error msg
  | Ok qs -> (
      let rec go i acc = function
        | [] -> Ok (qs @ List.rev acc)
        | text :: rest -> (
            match
              Newton_query.Parser.parse_result ~id:i
                ~name:(Printf.sprintf "adhoc%d" (i - 100)) text
            with
            | Ok q -> go (i + 1) (q :: acc) rest
            | Error m -> Error m)
      in
      match go 100 [] dsl with
      | Ok all -> Ok all
      | Error m -> Error m)

(* Static-analysis gate for the execution commands: error-severity
   intents are rejected with diagnostics (exit 2), never a backtrace
   from deeper in the pipeline. *)
let reject_invalid qs =
  let diags = Analysis.Check.check_queries qs in
  if Analysis.Diag.has_errors diags then begin
    prerr_endline
      (Analysis.Check.explain
         (List.filter
            (fun d -> d.Analysis.Diag.severity = Analysis.Diag.Error)
            diags));
    prerr_endline
      "newton: rejected by static analysis (run `newton check` for the full \
       report)";
    exit 2
  end

(* ---------------- trace shaping ---------------- *)

let profile_arg =
  let doc = "Trace profile: caida or mawi." in
  Arg.(value & opt (enum [ ("caida", `Caida); ("mawi", `Mawi) ]) `Caida
       & info [ "profile" ] ~docv:"PROFILE" ~doc)

let flows_arg =
  let doc = "Number of background flows in the synthetic trace." in
  Arg.(value & opt int 4000 & info [ "flows" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "PRNG seed for trace generation." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let attacks_arg =
  let default =
    Arg.info [ "attacks" ]
      ~doc:"Inject the default attack suite into the trace."
  in
  let extended =
    Arg.info [ "extended-attacks" ]
      ~doc:
        "Inject the extended attack suite: the default suite plus the \
         IPv6/ICMPv6/tunnel scenarios (NTP and SSDP amplification, ICMPv6 \
         scan, tunneled exfiltration) behind catalog queries Q15-Q17."
  in
  Arg.(
    value
    & vflag []
        [
          (Newton_trace.Attack.default_suite, default);
          (Newton_trace.Attack.extended_suite, extended);
        ])

let verbose_arg =
  let doc = "Print every report instead of a summary." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let profile_of = function
  | `Caida -> Trace_profile.caida_like
  | `Mawi -> Trace_profile.mawi_like

let trace_in_arg =
  Arg.(value & opt (some file) None
       & info [ "trace-in" ] ~docv:"FILE"
           ~doc:"Replay a trace saved with --trace-out instead of generating one.")

let trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE" ~doc:"Save the generated trace to a file.")

let make_trace ?pcap_in ?trace_in ?trace_out profile flows seed attacks =
  let trace =
    match (pcap_in, trace_in) with
    | Some path, _ -> (
        try Ingest.Capture.load path
        with Ingest.Capture.Format_error m ->
          Printf.eprintf "pcap: %s: %s\n" path m;
          exit 1)
    | None, Some path -> Newton_trace.Trace_io.load path
    | None, None ->
        Trace.generate ~attacks ~seed
          (Trace_profile.with_flows (profile_of profile) flows)
  in
  (match trace_out with
  | Some path ->
      Newton_trace.Trace_io.save trace path;
      Printf.printf "trace saved to %s\n" path
  | None -> ());
  trace

(* ---------------- validated numeric conversions ---------------- *)

(* Positive integer with parse-time validation: a bad --jobs/--batch is
   a CLI error (usage + nonzero exit), not a late runtime check. *)
let pos_int ~what =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | Some n -> Error (`Msg (Printf.sprintf "%s must be >= 1, got %d" what n))
    | None -> Error (`Msg (Printf.sprintf "%s expects an integer, got %S" what s))
  in
  Arg.conv (parse, Format.pp_print_int)

(* ---------------- pcap ingestion options ---------------- *)

let pcap_arg =
  Arg.(value & opt (some file) None
       & info [ "pcap" ] ~docv:"FILE"
           ~doc:"Ingest packets from a pcap/pcapng capture instead of a \
                 synthetic trace.")

(* Streaming-replay knobs, bundled so every replay command takes one
   term. *)
type ingest_opts = {
  io_pace : [ `Asap | `Realtime ];
  io_speedup : float;
  io_depth : int;
  io_chunk : int;
  io_policy : Ingest.Stream.policy;
}

let ingest_opts_term =
  let pace_arg =
    Arg.(value & opt (enum [ ("asap", `Asap); ("realtime", `Realtime) ]) `Asap
         & info [ "pace" ] ~docv:"MODE"
             ~doc:"Replay pacing: asap (as fast as the engine drains) or \
                   realtime (follow capture timestamps).")
  in
  let speedup_arg =
    Arg.(value & opt float 1.0
         & info [ "speedup" ] ~docv:"X"
             ~doc:"Time-compression factor for --pace realtime (2.0 replays \
                   twice as fast as captured).")
  in
  let depth_arg =
    Arg.(value
         & opt (pos_int ~what:"--queue-depth") Ingest.Stream.default_depth
         & info [ "queue-depth" ] ~docv:"N"
             ~doc:"Bounded ingest-queue capacity between the capture reader \
                   and the engine.")
  in
  let chunk_arg =
    Arg.(value & opt (pos_int ~what:"--chunk") Ingest.Stream.default_chunk
         & info [ "chunk" ] ~docv:"N"
             ~doc:"Packets handed to the engine per batch.")
  in
  let policy_arg =
    Arg.(value
         & opt
             (enum
                [ ("block", Ingest.Stream.Block); ("drop", Ingest.Stream.Drop) ])
             Ingest.Stream.Block
         & info [ "on-full" ] ~docv:"POLICY"
             ~doc:"Backpressure policy when the ingest queue fills: block \
                   the reader (lossless) or drop (count-and-discard, live \
                   capture semantics).")
  in
  let mk io_pace io_speedup io_depth io_chunk io_policy =
    if io_speedup <= 0.0 then begin
      prerr_endline "--speedup must be positive";
      exit 1
    end;
    { io_pace; io_speedup; io_depth; io_chunk; io_policy }
  in
  Term.(const mk $ pace_arg $ speedup_arg $ depth_arg $ chunk_arg $ policy_arg)

(* Stream a capture into [sink_fn] under the chosen pacing/backpressure,
   accounting every frame in [stats]. *)
let stream_pcap ~opts ~stats path sink_fn =
  let pace =
    match opts.io_pace with
    | `Asap -> Ingest.Stream.Asap
    | `Realtime -> Ingest.Stream.Realtime opts.io_speedup
  in
  try
    Ingest.Capture.with_source ~stats path (fun src ->
        Ingest.Stream.run ~depth:opts.io_depth ~chunk:opts.io_chunk ~pace
          ~policy:opts.io_policy ~stats src sink_fn)
  with Ingest.Capture.Format_error m ->
    Printf.eprintf "pcap: %s: %s\n" path m;
    exit 1

let print_ingest_summary stats (s : Ingest.Stream.summary) =
  let get k = Telemetry.Stats.get stats k in
  Printf.printf
    "ingest: %d frames, %d decoded, %d skipped (%d non-ip, %d truncated, \
     %d fragment, %d malformed), %d dropped on backpressure; %d chunks in \
     %.2f s\n"
    (get Telemetry.Stats.Ingest_frames)
    (get Telemetry.Stats.Ingest_decoded)
    (get Telemetry.Stats.Ingest_non_ip
    + get Telemetry.Stats.Ingest_truncated
    + get Telemetry.Stats.Ingest_fragment
    + get Telemetry.Stats.Ingest_malformed)
    (get Telemetry.Stats.Ingest_non_ip)
    (get Telemetry.Stats.Ingest_truncated)
    (get Telemetry.Stats.Ingest_fragment)
    (get Telemetry.Stats.Ingest_malformed)
    s.Ingest.Stream.dropped s.Ingest.Stream.chunks s.Ingest.Stream.wall_seconds

(* ---------------- topology / deployment shape ---------------- *)

let topo_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ "linear"; n ] -> (try Ok (Topo.linear (int_of_string n)) with _ -> Error (`Msg "bad linear size"))
    | [ "fat-tree"; k ] -> (
        try Ok (Topo.fat_tree (int_of_string k)) with
        | Invalid_argument m -> Error (`Msg m)
        | _ -> Error (`Msg "bad fat-tree arity"))
    | [ "bypass" ] -> Ok (Topo.bypass ())
    | [ "bypass"; s'; l ] -> (
        try Ok (Topo.bypass ~short:(int_of_string s') ~long:(int_of_string l) ()) with
        | Invalid_argument m -> Error (`Msg m)
        | _ -> Error (`Msg "bad bypass chain lengths"))
    | [ "isp" ] -> Ok (Topo.isp ())
    | _ -> Error (`Msg "expected linear:N, fat-tree:K, bypass[:S:L], or isp")
  in
  let print fmt t = Format.fprintf fmt "%s" (Topo.name t) in
  Arg.conv (parse, print)

let topo_arg =
  Arg.(value & opt topo_conv (Topo.fat_tree 4)
       & info [ "topo" ] ~docv:"TOPO"
           ~doc:"Topology: linear:N, fat-tree:K, bypass[:S:L], or isp.")

let stages_arg =
  Arg.(value & opt int 12
       & info [ "stages-per-switch" ] ~docv:"N"
           ~doc:"Pipeline stages each switch grants Newton (CQE slices the query).")

(* ---------------- sharded replay ---------------- *)

let jobs_arg =
  let doc =
    "Replay shards (OCaml 5 domains). 1 = the sequential engine; N > 1 \
     shards the packet stream (per-query key when one query is installed, \
     5-tuple otherwise) and merges the per-shard results."
  in
  Arg.(value & opt (pos_int ~what:"--jobs") 1
       & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let batch_arg =
  let doc = "Packets processed per shard batch (sharded replay only)." in
  Arg.(value
       & opt (pos_int ~what:"--batch") Newton_runtime.Parallel_engine.default_batch
       & info [ "batch" ] ~docv:"B" ~doc)
