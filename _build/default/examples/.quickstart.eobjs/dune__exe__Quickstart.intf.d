examples/quickstart.mli:
