examples/quickstart.ml: Array Attack Catalog Compiler Device List Newton_core Newton_dataplane Packet Printf Query Report Trace Trace_profile
