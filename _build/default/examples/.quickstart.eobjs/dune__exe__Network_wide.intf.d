examples/network_wide.mli:
