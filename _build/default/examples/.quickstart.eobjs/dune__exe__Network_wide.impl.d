examples/network_wide.ml: Attack Catalog Compiler Deploy Lazy List Network Newton_controller Newton_core Packet Placement Printf Topo Trace Trace_profile
