examples/ddos_drilldown.mli:
