examples/multi_tenant.ml: Attack Compiler Device Field List Newton_core Newton_dataplane Packet Printf Query Report String Trace Trace_profile
