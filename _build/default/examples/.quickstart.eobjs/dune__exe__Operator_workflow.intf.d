examples/operator_workflow.mli:
