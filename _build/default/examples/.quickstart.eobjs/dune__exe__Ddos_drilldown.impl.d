examples/ddos_drilldown.ml: Array Attack Catalog Compiler Device Field List Newton_baselines Newton_core Newton_dataplane Packet Printf Query Report String Trace Trace_profile
