examples/operator_workflow.ml: Array Attack Device Field List Newton_core Newton_dataplane Newton_query Packet Printf Query Reactive Report Trace Trace_profile
