(** Derived experiment: time-to-detection after an operator decides to
    monitor (not a paper figure; follows from Fig. 10/11).

    A SYN flood runs for the whole trace.  At decision time t_d the
    operator installs Q1.  Newton activates after a rule-install
    latency of milliseconds; Sonata must reload the pipeline — the
    switch forwards (and observes) nothing for the outage, and all
    sketch state restarts.  Detection latency is the gap between the
    decision and the first report. *)

open Common

let trace_duration = 12.0

let mk_trace () =
  Newton_trace.Gen.generate
    ~attacks:
      [ Newton_trace.Attack.Syn_flood
          { victim = Newton_trace.Attack.host_of 1; attackers = 60;
            syns_per_attacker = 300 } ]
    ~seed:42
    { (Newton_trace.Profile.with_flows Newton_trace.Profile.caida_like 1200) with
      duration = trace_duration }

(* Feed only packets visible after [active_from]; return the timestamp
   of the first report. *)
let first_detection ~active_from ~process ~message_count trace =
  let detected = ref None in
  Newton_trace.Gen.iter
    (fun p ->
      if !detected = None && Newton_packet.Packet.ts p >= active_from then begin
        process p;
        if message_count () > 0 then detected := Some (Newton_packet.Packet.ts p)
      end)
    trace;
  !detected

let run () =
  banner "Detection latency: operator decision -> first report (derived)";
  let trace = mk_trace () in
  let t =
    T.create ~aligns:[ T.Right; T.Right; T.Right; T.Right; T.Right ]
      [ "decision t (s)"; "Newton active (+ms)"; "Newton detect (+ms)";
        "Sonata active (+s)"; "Sonata detect (+s)" ]
  in
  List.iter
    (fun t_d ->
      (* Newton: rule install, milliseconds. *)
      let device = Newton_core.Newton.Device.create () in
      let _, install = Newton_core.Newton.Device.add_query device (Newton_query.Catalog.q1 ()) in
      let n_active = t_d +. install in
      let n_detect =
        first_detection ~active_from:n_active
          ~process:(Newton_core.Newton.Device.process_packet device)
          ~message_count:(fun () -> Newton_core.Newton.Device.message_count device)
          trace
      in
      (* Sonata: full reload; the switch is dark for the outage. *)
      let sonata = Newton_baselines.Sonata.create () in
      let outage =
        Newton_baselines.Sonata.install_query sonata
          (compile (Newton_query.Catalog.q1 ()))
      in
      let s_active = t_d +. outage in
      let s_detect =
        first_detection ~active_from:s_active
          ~process:(Newton_baselines.Sonata.process_packet sonata)
          ~message_count:(fun () -> Newton_baselines.Sonata.message_count sonata)
          trace
      in
      let fmt_rel base = function
        | Some ts -> Printf.sprintf "%.1f" ((ts -. base) *. 1e3)
        | None -> "never (trace ended)"
      in
      let fmt_rel_s base = function
        | Some ts -> Printf.sprintf "%.2f" (ts -. base)
        | None -> "never"
      in
      T.add_row t
        [ Printf.sprintf "%.1f" t_d;
          Printf.sprintf "%.1f" (install *. 1e3);
          fmt_rel t_d n_detect;
          Printf.sprintf "%.2f" outage;
          fmt_rel_s t_d s_detect ])
    [ 0.5; 2.0; 4.0 ];
  T.print t;
  maybe_dat t "detection";
  note "Newton reacts within one window of the decision; Sonata is blind for";
  note "the whole reload (and the network forwards nothing meanwhile)"
