bench/fig16.ml: Common Compose List Newton_compiler Newton_core Newton_query Newton_trace Sonata_cost T
