bench/fig13.ml: Common Deploy List Newton_baselines Newton_compiler Newton_controller Newton_network Newton_query Newton_trace Printf T
