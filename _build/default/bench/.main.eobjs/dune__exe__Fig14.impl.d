bench/fig14.ml: Common Deploy List Newton_compiler Newton_controller Newton_network Newton_query Newton_runtime Newton_trace Printf T
