bench/fig17.ml: Common List Newton_compiler Newton_controller Newton_network Newton_query Placement Printf T
