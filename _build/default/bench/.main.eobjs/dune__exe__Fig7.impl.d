bench/fig7.ml: Common List Newton_compiler Newton_query Printf T
