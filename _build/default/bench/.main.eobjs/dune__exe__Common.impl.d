bench/common.ml: Filename Newton_compiler Newton_query Newton_trace Newton_util Printf Sys
