bench/refinement.ml: Array Common List Newton Newton_core Newton_dataplane Newton_packet Newton_query Newton_trace Printf Refine T
