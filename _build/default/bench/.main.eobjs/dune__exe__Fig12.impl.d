bench/fig12.ml: Array Common List Newton_baselines Newton_core Newton_trace Printf T
