bench/main.mli:
