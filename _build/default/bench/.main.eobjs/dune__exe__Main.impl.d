bench/main.ml: Ablation Array Detection Fig10 Fig11 Fig12 Fig13 Fig14 Fig15 Fig16 Fig17 Fig7 List Microbench Printf Refinement String Sys Table3 Unix
