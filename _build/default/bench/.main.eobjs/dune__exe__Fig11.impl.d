bench/fig11.ml: Common List Newton_core Newton_query Newton_util Option Printf T
