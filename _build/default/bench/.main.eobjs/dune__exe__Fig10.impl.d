bench/fig10.ml: Common List Newton_baselines Newton_dataplane Newton_query Printf Switch T
