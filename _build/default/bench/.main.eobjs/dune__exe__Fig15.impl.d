bench/fig15.ml: Common Compose Decompose List Newton_compiler Newton_query Printf Sonata_cost T
