bench/table3.ml: Common Module_cost Newton_dataplane Printf Resource T
