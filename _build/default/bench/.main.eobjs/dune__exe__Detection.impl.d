bench/detection.ml: Common List Newton_baselines Newton_core Newton_packet Newton_query Newton_trace Printf T
