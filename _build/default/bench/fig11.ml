(** Figure 11: Newton query installation / removal delay, Q1–Q9,
    100 repetitions each (paper: all operations complete within 20 ms;
    Q1 installs in as little as 5 ms). *)

open Common

let repetitions = 100

let run () =
  banner "Figure 11: query install/remove delay (ms, 100 repetitions)";
  let t =
    T.create
      ~aligns:[ T.Left; T.Right; T.Right; T.Right; T.Right; T.Right; T.Right; T.Right ]
      [ "Query"; "rules"; "install mean"; "install p5"; "install p95";
        "remove mean"; "remove p5"; "remove p95" ]
  in
  let worst = ref 0.0 in
  List.iter
    (fun q ->
      let installs = ref [] and removes = ref [] and rules = ref 0 in
      let device = Newton_core.Newton.Device.create () in
      for _ = 1 to repetitions do
        let h, lat_in = Newton_core.Newton.Device.add_query device q in
        rules := Newton_core.Newton.Device.monitor_rules device;
        let lat_rm = Option.get (Newton_core.Newton.Device.remove_query device h) in
        installs := (lat_in *. 1e3) :: !installs;
        removes := (lat_rm *. 1e3) :: !removes
      done;
      let st = Newton_util.Stats.mean !installs and rt = Newton_util.Stats.mean !removes in
      worst := max !worst (Newton_util.Stats.percentile 95.0 !installs);
      T.add_row t
        [ Printf.sprintf "Q%d" q.Newton_query.Ast.id;
          string_of_int !rules;
          Printf.sprintf "%.2f" st;
          Printf.sprintf "%.2f" (Newton_util.Stats.percentile 5.0 !installs);
          Printf.sprintf "%.2f" (Newton_util.Stats.percentile 95.0 !installs);
          Printf.sprintf "%.2f" rt;
          Printf.sprintf "%.2f" (Newton_util.Stats.percentile 5.0 !removes);
          Printf.sprintf "%.2f" (Newton_util.Stats.percentile 95.0 !removes) ])
    (all_queries ());
  T.print t;
  maybe_dat t "fig11";
  note "paper: all operations within 20 ms; measured p95 worst case %.2f ms" !worst;
  note "forwarding is never interrupted (rule-level reconfiguration)"
