(** Figure 16: resource multiplexing with concurrent queries (all clones
    of Q4).  Sonata chains queries sequentially, so tables and stages are
    strictly additive.  S-Newton (clones monitor the {e same} traffic)
    must chain module suites too.  P-Newton (clones monitor {e different}
    traffic) installs each clone as rules in the {e same} modules — the
    module/stage count stays flat while only table entries grow. *)

open Common
open Newton_compiler

let run () =
  banner "Figure 16: concurrent Q4 clones — Sonata vs S-Newton vs P-Newton";
  let q4 = Newton_query.Catalog.q4 () in
  let c = compile q4 in
  let m = c.Compose.stats.Compose.modules_shared in
  let s = c.Compose.stats.Compose.stages in
  let rules = c.Compose.stats.Compose.rules in
  let t =
    T.create
      ~aligns:[ T.Right; T.Right; T.Right; T.Right; T.Right; T.Right;
                T.Right; T.Right ]
      [ "queries"; "Sonata tbl"; "Sonata stg"; "S-Newton mod"; "S-Newton stg";
        "P-Newton mod"; "P-Newton stg"; "P-Newton rules" ]
  in
  List.iter
    (fun n ->
      T.add_row t
        [ string_of_int n;
          string_of_int (Sonata_cost.concurrent_tables q4 n);
          string_of_int (Sonata_cost.concurrent_stages q4 n);
          string_of_int (m * n);
          string_of_int (s * n);
          string_of_int m;
          string_of_int s;
          string_of_int (rules * n) ])
    [ 1; 10; 25; 50; 75; 100 ];
  T.print t;
  maybe_dat t "fig16";

  (* Functional check: 100 concurrent Q4 clones on distinct traffic run
     in one device and each still detects its own scanner. *)
  let device = Newton_core.Newton.Device.create () in
  let n_clones = 100 in
  for _ = 1 to n_clones do
    ignore (Newton_core.Newton.Device.add_query device (Newton_query.Catalog.q4 ()))
  done;
  let trace =
    Newton_trace.Gen.generate
      ~attacks:
        [ Newton_trace.Attack.Port_scan
            { scanner = Newton_trace.Attack.host_of 2;
              victim = Newton_trace.Attack.host_of 3; ports = 1500 } ]
      ~seed:7
      (Newton_trace.Profile.with_flows Newton_trace.Profile.caida_like 500)
  in
  Newton_core.Newton.Device.process_trace device trace;
  note "functional: %d concurrent Q4 instances, %d total rules, scanner detected by all: %b"
    n_clones
    (Newton_core.Newton.Device.monitor_rules device)
    (Newton_core.Newton.Device.message_count device >= n_clones);
  note "paper: Sonata and S-Newton grow linearly; P-Newton stays flat to 100 queries"
