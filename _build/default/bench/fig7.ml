(** Figure 7: overall module/stage reduction ratios of query compilation
    for Q1–Q9 (paper: modules reduced by >42.4 %, stages by >69.7 %). *)

open Common

let run () =
  banner "Figure 7: query compilation optimization ratios (Q1-Q9)";
  let t =
    T.create ~aligns:[ T.Left; T.Right; T.Right; T.Right; T.Right; T.Right; T.Right ]
      [ "Query"; "Modules(naive)"; "Modules(opt)"; "Module reduction";
        "Stages(naive)"; "Stages(opt)"; "Stage reduction" ]
  in
  let min_mod = ref 1.0 and min_stage = ref 1.0 in
  List.iter
    (fun q ->
      let base = compile_with Newton_compiler.Decompose.baseline_options q in
      let opt = compile q in
      let sb = base.Newton_compiler.Compose.stats in
      let so = opt.Newton_compiler.Compose.stats in
      let mr =
        1.0 -. (float_of_int so.Newton_compiler.Compose.modules_shared
                /. float_of_int sb.Newton_compiler.Compose.modules_naive)
      in
      let sr =
        1.0 -. (float_of_int so.Newton_compiler.Compose.stages
                /. float_of_int sb.Newton_compiler.Compose.stages_naive)
      in
      if mr < !min_mod then min_mod := mr;
      if sr < !min_stage then min_stage := sr;
      T.add_row t
        [ Printf.sprintf "Q%d %s" q.Newton_query.Ast.id q.Newton_query.Ast.name;
          string_of_int sb.Newton_compiler.Compose.modules_naive;
          string_of_int so.Newton_compiler.Compose.modules_shared;
          pct mr;
          string_of_int sb.Newton_compiler.Compose.stages_naive;
          string_of_int so.Newton_compiler.Compose.stages;
          pct sr ])
    (all_queries ());
  T.print t;
  maybe_dat t "fig7";
  note "paper: module reduction > 42.4%%, stage reduction > 69.7%% (minimum over queries)";
  note "measured minimum: modules %s, stages %s" (pct !min_mod) (pct !min_stage)
