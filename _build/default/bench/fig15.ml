(** Figure 15: query compilation step by step — modules and stages for
    the naive baseline and after each optimization (Opt.1 front-filter
    replacement, Opt.2 unneeded-module removal, Opt.3 vertical
    composition), plus Sonata's logical tables / estimated stages for
    five queries. *)

open Common
open Newton_compiler

let opts ~o1 ~o2 ~o3 =
  { Decompose.default_options with opt1 = o1; opt2 = o2; opt3 = o3 }

let run () =
  banner "Figure 15a/15b: modules and stages per optimization step";
  let t =
    T.create
      ~aligns:[ T.Left; T.Right; T.Right; T.Right; T.Right; T.Right;
                T.Right; T.Right; T.Right; T.Right ]
      [ "Query"; "prims"; "M base"; "M opt1"; "M opt2"; "M opt3";
        "S base"; "S opt1"; "S opt2"; "S opt3" ]
  in
  List.iter
    (fun q ->
      let base = compile_with (opts ~o1:false ~o2:false ~o3:false) q in
      let o1 = compile_with (opts ~o1:true ~o2:false ~o3:false) q in
      let o2 = compile_with (opts ~o1:true ~o2:true ~o3:false) q in
      let o3 = compile_with (opts ~o1:true ~o2:true ~o3:true) q in
      let m (c : Compose.t) = c.Compose.stats.Compose.modules in
      let msh (c : Compose.t) = c.Compose.stats.Compose.modules_shared in
      let s (c : Compose.t) = c.Compose.stats.Compose.stages in
      T.add_row t
        [ Printf.sprintf "Q%d" q.Newton_query.Ast.id;
          string_of_int (Newton_query.Ast.num_primitives q);
          string_of_int base.Compose.stats.Compose.modules_naive;
          string_of_int (m o1); string_of_int (m o2); string_of_int (msh o3);
          string_of_int base.Compose.stats.Compose.stages_naive;
          string_of_int (s o1); string_of_int (s o2); string_of_int (s o3) ])
    (all_queries ());
  T.print t;
  maybe_dat t "fig15";

  banner "Figure 15 (cont.): Sonata logical tables / estimated stages vs Newton";
  let t =
    T.create
      ~aligns:[ T.Left; T.Right; T.Right; T.Right; T.Right ]
      [ "Query"; "Sonata tables"; "Sonata stages"; "Newton modules(opt)";
        "Newton stages(opt)" ]
  in
  List.iter
    (fun q ->
      let opt = compile q in
      T.add_row t
        [ Printf.sprintf "Q%d" q.Newton_query.Ast.id;
          string_of_int (Sonata_cost.logical_tables q);
          string_of_int (Sonata_cost.estimated_stages q);
          string_of_int opt.Compose.stats.Compose.modules_shared;
          string_of_int opt.Compose.stats.Compose.stages ])
    (List.filteri (fun i _ -> i < 5) (all_queries ()));
  T.print t;
  maybe_dat t "fig15_sonata";
  note "paper: optimized Newton needs no more than 10 stages for all queries"
