(** Figure 10: forwarding interruption caused by Sonata query updates.

    (a) Throughput timeline around a query update: Sonata's full P4
        reload drops throughput to zero for seconds; Newton's rule-level
        update does not perturb forwarding at all.
    (b) Interruption delay vs. the number of forwarding-table entries the
        reload must restore (paper: ~7.5 s at default sizes, growing
        linearly to ~0.5 min at 60 K entries). *)

open Common
open Newton_dataplane

let offered_pps = 1_000_000.0

let run () =
  banner "Figure 10a: throughput timeline around a query update";
  let q = Newton_query.Catalog.q1 () in
  let compiled = compile q in
  (* Sonata switch with switch.p4's default forwarding population. *)
  let sonata = Newton_baselines.Sonata.create () in
  let update_at = 10.0 in
  let outage = ref 0.0 in
  let t = T.create ~aligns:[ T.Right; T.Right; T.Right ]
      [ "time(s)"; "Sonata Mpps"; "Newton Mpps" ] in
  (* Simulate a 30 s timeline sampled at 1 s; the update lands at t=10. *)
  let sonata_outage_until = ref neg_infinity in
  for sec = 0 to 29 do
    let now = float_of_int sec in
    if sec = int_of_float update_at then begin
      outage := Newton_baselines.Sonata.install_query ~offered_pps sonata compiled;
      sonata_outage_until := now +. !outage
    end;
    let sonata_tput = if now >= update_at && now < !sonata_outage_until then 0.0 else 1.0 in
    T.add_row t
      [ Printf.sprintf "%d" sec;
        Printf.sprintf "%.2f" (sonata_tput *. offered_pps /. 1e6);
        Printf.sprintf "%.2f" (offered_pps /. 1e6) ]
  done;
  T.print t;
  maybe_dat t "fig10a";
  note "Sonata outage at default table size: %.2f s (paper: ~7.5 s); Newton: none" !outage;
  note "packets dropped during Sonata outage: %d"
    (Switch.dropped_during_outage (Newton_baselines.Sonata.switch sonata));

  banner "Figure 10b: Sonata interruption delay vs forwarding-table entries";
  let t = T.create ~aligns:[ T.Right; T.Right; T.Right ]
      [ "table entries"; "Sonata outage (s)"; "Newton outage (s)" ] in
  List.iter
    (fun entries ->
      let s = Newton_baselines.Sonata.create ~fwd_entries:entries () in
      let outage = Newton_baselines.Sonata.install_query s compiled in
      T.add_row t
        [ string_of_int entries; Printf.sprintf "%.2f" outage; "0.00" ])
    [ 6_000; 10_000; 20_000; 30_000; 40_000; 50_000; 60_000 ];
  T.print t;
  maybe_dat t "fig10b";
  note "paper: linear growth, up to ~0.5 min at 60K entries"
