(** Figure 13: network-wide monitoring overhead for Q1 vs. forwarding
    path length.  Sole-switch systems (Sonata model, TurboFlow, *Flow,
    FlowRadar) deploy per switch and report per switch, so overhead grows
    linearly with hop count; Newton's CQE treats the path as one
    consolidated pipeline and reports once. *)

open Common
open Newton_controller

let packets_through topo_n trace mode =
  let topo = Newton_network.Topo.linear topo_n in
  let ctl = Deploy.create topo in
  let q = Newton_query.Catalog.q1 () in
  let compiled = compile q in
  (* CQE spans the whole path: slice the query over all [topo_n] hops. *)
  let stages = compiled.Newton_compiler.Compose.stats.Newton_compiler.Compose.stages in
  let per_switch = max 1 ((stages + topo_n - 1) / topo_n) in
  let _ = Deploy.deploy ~mode ~stages_per_switch:per_switch ctl compiled in
  let src_host = Newton_network.Topo.num_switches topo in
  let dst_host = src_host + 1 in
  Newton_trace.Gen.iter (fun p -> Deploy.process_packet ctl ~src_host ~dst_host p) trace;
  (Deploy.message_count ctl, Deploy.packets ctl, Deploy.sp_overhead_ratio ctl)

let run () =
  banner "Figure 13: network-wide monitoring overhead for Q1 vs hop count";
  let trace = caida_trace ~flows:2500 () in
  let npkts = Newton_trace.Gen.length trace in
  let t =
    T.create
      ~aligns:[ T.Right; T.Right; T.Right; T.Right; T.Right; T.Right; T.Right ]
      [ "hops"; "Newton(CQE)"; "Sonata(sole)"; "TurboFlow"; "*Flow";
        "FlowRadar"; "Newton SP bw" ]
  in
  List.iter
    (fun hops ->
      let nmsgs, npk, sp = packets_through hops trace `Cqe in
      let smsgs, _, _ = packets_through hops trace `Sole in
      (* Per-switch exporters: every hop runs its own instance. *)
      let tf = Newton_baselines.Turboflow.create () in
      Newton_trace.Gen.iter (Newton_baselines.Turboflow.process tf) trace;
      Newton_baselines.Turboflow.finish tf;
      let sf = Newton_baselines.Starflow.create () in
      Newton_trace.Gen.iter (Newton_baselines.Starflow.process sf) trace;
      Newton_baselines.Starflow.finish sf;
      let fr = Newton_baselines.Flowradar.create () in
      Newton_trace.Gen.iter (Newton_baselines.Flowradar.process fr) trace;
      Newton_baselines.Flowradar.finish fr;
      let r msgs = float_of_int msgs /. float_of_int npkts in
      T.add_row t
        [ string_of_int hops;
          Printf.sprintf "%.5f" (float_of_int nmsgs /. float_of_int npk);
          Printf.sprintf "%.5f" (float_of_int smsgs /. float_of_int npk);
          Printf.sprintf "%.5f" (float_of_int hops *. r (Newton_baselines.Turboflow.messages tf));
          Printf.sprintf "%.5f" (float_of_int hops *. r (Newton_baselines.Starflow.messages sf));
          Printf.sprintf "%.5f" (float_of_int hops *. r (Newton_baselines.Flowradar.messages fr));
          Printf.sprintf "%.4f%%" (100.0 *. sp) ])
    [ 1; 2; 3 ];
  T.print t;
  maybe_dat t "fig13";
  note "paper: all systems but Newton grow linearly with hop count;";
  note "Newton reports once per path and pays <1%% SP header bandwidth"
