(** Table 3: hardware resources consumed by Newton, normalised by the
    resource usage of the switch.p4-like forwarding program.  Three
    categories: per-stage (naive baseline layout vs. compact module
    layout), per-module (the four modules), and per-primitive (amortised
    over the 256 rules each module accommodates; stateful primitives span
    several suites — 2 for reduce's CM, 3 for distinct's BF). *)

open Common
open Newton_dataplane

let row name (r : Resource.t) =
  let s = Module_cost.switchp4_usage in
  let p used total = if total = 0.0 then "0.0%" else Printf.sprintf "%.3f%%" (100.0 *. used /. total) in
  [ name;
    p r.Resource.crossbar s.Resource.crossbar;
    p r.Resource.sram s.Resource.sram;
    p r.Resource.tcam s.Resource.tcam;
    p r.Resource.vliw s.Resource.vliw;
    p r.Resource.hash_bits s.Resource.hash_bits;
    p r.Resource.salu s.Resource.salu;
    p r.Resource.gateway s.Resource.gateway ]

let run () =
  banner "Table 3: resources consumed by Newton (normalised by switch.p4 usage)";
  let t =
    T.create
      ~aligns:[ T.Left; T.Right; T.Right; T.Right; T.Right; T.Right; T.Right; T.Right ]
      ("Metric" :: Resource.names)
  in
  (* Per-stage: the naive layout spreads one suite over four stages; the
     compact layout packs all four modules per stage. *)
  T.add_row t (row "Per-stage: Baseline (naive)" Module_cost.naive_per_stage);
  T.add_row t (row "Per-stage: Compact layout" Module_cost.suite);
  T.add_row t (row "Module: Field Selection (K)" Module_cost.key_selection);
  T.add_row t (row "Module: Hash Calculation (H)" Module_cost.hash_calculation);
  T.add_row t (row "Module: State Bank (S)" (Module_cost.state_bank ()));
  T.add_row t (row "Module: Result Process (R)" Module_cost.result_process);
  T.add_row t (row "Primitive: filter (1 suite)" (Module_cost.primitive_cost ~suites:1));
  T.add_row t (row "Primitive: map (1 suite)" (Module_cost.primitive_cost ~suites:1));
  T.add_row t (row "Primitive: reduce (2 suites)" (Module_cost.primitive_cost ~suites:2));
  T.add_row t (row "Primitive: distinct (3 suites)" (Module_cost.primitive_cost ~suites:3));
  T.print t;
  maybe_dat t "table3";
  note "paper per-stage compact: 4.756%% / 4.929%% / 6.451%% / 16.90%% / 4.889%% / 5.555%% / 1.428%%";
  note "each module supports %d rules; per-primitive costs are amortised shares"
    Module_cost.rules_per_module;
  (* Fit check: the compact layout's suite must fit one physical stage. *)
  let fits = Resource.fits Module_cost.suite Resource.stage_budget in
  note "compact suite fits a single stage budget: %b" fits
