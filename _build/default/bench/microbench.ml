(** Micro-benchmarks (Bechamel): per-packet processing cost of the query
    engine, query compilation latency, and hash throughput.  These are
    not paper figures; they document the simulator's own performance so
    experiment runtimes are predictable. *)

open Bechamel
open Toolkit

let make_tests () =
  let trace = Common.caida_trace ~flows:300 () in
  let packets = Newton_trace.Gen.packets trace in
  let npkts = Array.length packets in
  let device_q1 = Newton_core.Newton.Device.create () in
  ignore (Newton_core.Newton.Device.add_query device_q1 (Newton_query.Catalog.q1 ()));
  let device_all = Newton_core.Newton.Device.create () in
  List.iter
    (fun q -> ignore (Newton_core.Newton.Device.add_query device_all q))
    (Newton_query.Catalog.all ());
  let i = ref 0 in
  let j = ref 0 in
  [
    Test.make ~name:"engine/packet-q1"
      (Staged.stage (fun () ->
           Newton_core.Newton.Device.process_packet device_q1 packets.(!i);
           i := (!i + 1) mod npkts));
    Test.make ~name:"engine/packet-9-queries"
      (Staged.stage (fun () ->
           Newton_core.Newton.Device.process_packet device_all packets.(!j);
           j := (!j + 1) mod npkts));
    Test.make ~name:"compiler/compile-q7"
      (Staged.stage (fun () ->
           ignore (Newton_compiler.Compose.compile (Newton_query.Catalog.q7 ()))));
    Test.make ~name:"sketch/hash-vector"
      (Staged.stage (fun () ->
           ignore (Newton_sketch.Hash.hash_vector ~seed:3 [| 0xC0A80001; 443; 6 |])));
    (let cm = Newton_sketch.Count_min.create ~width:4096 ~depth:3 ~seed:5 in
     let k = ref 0 in
     Test.make ~name:"sketch/count-min-add"
       (Staged.stage (fun () ->
            k := (!k + 1) land 0xFFFF;
            ignore (Newton_sketch.Count_min.add cm [| !k |] 1))));
    (let tbl = Newton_dataplane.Table.create ~name:"bench" ~key_width:2 () in
     let _ = List.init 64 (fun i ->
         Newton_dataplane.Table.add tbl ~priority:i
           ~matches:[| Newton_dataplane.Table.Exact i; Newton_dataplane.Table.Any |] i) in
     let k = ref 0 in
     Test.make ~name:"dataplane/table-lookup-64-rules"
       (Staged.stage (fun () ->
            k := (!k + 1) land 63;
            ignore (Newton_dataplane.Table.lookup tbl [| !k; 0 |]))));
    (let sp = Newton_packet.Sp_header.make ~hash1:1 ~state1:2 ~hash2:3 ~state2:4 ~global:5 in
     Test.make ~name:"packet/sp-codec-roundtrip"
       (Staged.stage (fun () ->
            ignore (Newton_packet.Sp_header.decode (Newton_packet.Sp_header.encode sp)))));
    Test.make ~name:"query/parse-dsl"
      (Staged.stage (fun () ->
           ignore
             (Newton_query.Parser.parse
                "filter(proto == tcp) | map(sip, dport) | distinct(sip, dport) | map(sip) | reduce(sip, count) | filter(count > 40) | map(sip)")));
  ]

let run () =
  Common.banner "Microbenchmarks (simulator performance, ns/op)";
  let tests = make_tests () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 100) ()
  in
  let t = Common.T.create ~aligns:[ Common.T.Left; Common.T.Right ] [ "benchmark"; "ns/op" ] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ]) in
      let analyzed = Analyze.all ols (Instance.monotonic_clock) results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Common.T.add_row t [ name; Printf.sprintf "%.1f" est ]
          | _ -> Common.T.add_row t [ name; "n/a" ])
        analyzed)
    tests;
  Common.T.print t
