(** Ablation studies for Newton's design choices (not paper figures).

    (a) Layout capacity: module suites a 12-stage pipeline accommodates
        under the naive vs. the compact layout, verified against the
        per-stage resource budgets (the claim behind Table 3).
    (b) Sketch depth/width trade-off: Q1 accuracy when the same register
        budget is arranged as more-rows-narrower vs. fewer-rows-wider.
    (c) Register sharing under churn: fragmentation and capacity of the
        state-bank allocator as queries come and go.
    (d) ECMP state scatter: CQE's accuracy cost when a multi-flow
        aggregate's packets hash onto different paths (the §7
        state-dispersion limitation). *)

open Common
open Newton_dataplane

(* ---------------- (a) layout capacity ---------------- *)

let layout_capacity () =
  banner "Ablation (a): pipeline capacity, naive vs compact layout";
  let fit_suites per_stage_components =
    (* Fill a 12-stage pipeline stage by stage, placing components until
       a stage rejects one. *)
    let sw = Switch.create ~id:0 () in
    let placed = ref 0 in
    (try
       for stage = 0 to Switch.num_stages sw - 1 do
         List.iteri
           (fun i cost ->
             Switch.place sw ~stage ~name:(Printf.sprintf "c%d_%d" stage i) cost;
             incr placed)
           per_stage_components
       done
     with Stage.Stage_full _ -> ());
    !placed
  in
  let naive =
    (* one module per stage: cycle K,H,S,R *)
    fit_suites [ Module_cost.naive_per_stage ]
  in
  let compact = fit_suites [ Module_cost.suite ] in
  let t = T.create ~aligns:[ T.Left; T.Right; T.Right ]
      [ "layout"; "placements (12 stages)"; "suites" ] in
  T.add_row t [ "naive (1 module/stage)"; string_of_int naive; string_of_int (naive / 4) ];
  T.add_row t [ "compact (K+H+S+R/stage)"; string_of_int compact; string_of_int compact ];
  T.print t;
  note "compact layout quadruples the module suites one pipeline can host";
  (* How many more suites until a stage resource saturates? *)
  let budget = Resource.stage_budget in
  let s = Module_cost.suite in
  note "per-stage suite headroom: SALU %.1fx, SRAM %.1fx, TCAM %.1fx"
    (budget.Resource.salu /. s.Resource.salu)
    (budget.Resource.sram /. s.Resource.sram)
    (budget.Resource.tcam /. s.Resource.tcam)

(* ---------------- (b) sketch depth/width ---------------- *)

let depth_width () =
  banner "Ablation (b): Q1 accuracy, same registers arranged depth x width";
  let trace =
    Newton_trace.Gen.generate
      ~attacks:
        [ Newton_trace.Attack.Syn_flood
            { victim = Newton_trace.Attack.host_of 1; attackers = 60; syns_per_attacker = 40 } ]
      ~seed:42
      (Newton_trace.Profile.with_flows
         { Newton_trace.Profile.caida_like with mean_flow_pkts = 4.0 }
         20_000)
  in
  let q th = Newton_query.Catalog.q1 ~th () in
  let truth = Newton_query.Ref_eval.evaluate (q 5) (Newton_trace.Gen.packets trace) in
  let t = T.create ~aligns:[ T.Right; T.Right; T.Right; T.Right ]
      [ "depth"; "width"; "accuracy"; "FPR" ] in
  List.iter
    (fun (depth, width) ->
      let options =
        { Newton_compiler.Decompose.default_options with
          reduce_depth = depth; registers = width }
      in
      let device = Newton_core.Newton.Device.create ~options () in
      let _ = Newton_core.Newton.Device.add_query device (q 5) in
      Newton_core.Newton.Device.process_trace device trace;
      let a =
        Newton_runtime.Analyzer.score ~truth
          ~detected:(Newton_core.Newton.Device.reports device)
      in
      T.add_row t
        [ string_of_int depth; string_of_int width;
          Printf.sprintf "%.3f" a.Newton_runtime.Analyzer.precision;
          Printf.sprintf "%.3f" a.Newton_runtime.Analyzer.fpr ])
    (* constant total budget: depth * width = 3072 *)
    [ (1, 3072); (2, 1536); (3, 1024); (4, 768); (6, 512) ];
  T.print t;
  note "a few rows beat one wide row at equal memory; very deep+narrow loses again"

(* ---------------- (c) register sharing under churn ---------------- *)

let register_churn () =
  banner "Ablation (c): state-bank allocator under query churn";
  let alloc = Register_alloc.create ~arrays:4 ~registers_per_array:4096 in
  let rng = Newton_util.Prng.of_int 99 in
  let live = ref [] in
  let rejected = ref 0 in
  let t = T.create ~aligns:[ T.Right; T.Right; T.Right; T.Right; T.Right ]
      [ "churn step"; "live queries"; "allocated"; "fragmentation"; "rejected" ] in
  for step = 1 to 2000 do
    if Newton_util.Prng.bernoulli rng 0.55 || !live = [] then begin
      (* install a query wanting a power-of-two register range *)
      let want = 1 lsl (6 + Newton_util.Prng.int rng 6) (* 64..2048 *) in
      match Register_alloc.alloc alloc ~registers:want with
      | Some r -> live := r :: !live
      | None -> incr rejected
    end
    else begin
      (* remove a random live query *)
      let arr = Array.of_list !live in
      let victim = Newton_util.Prng.choice rng arr in
      Register_alloc.free alloc victim;
      live := List.filter (fun r -> r <> victim) !live
    end;
    if step mod 400 = 0 then
      T.add_row t
        [ string_of_int step;
          string_of_int (List.length !live);
          string_of_int (Register_alloc.allocated_registers alloc);
          Printf.sprintf "%.3f" (Register_alloc.fragmentation alloc);
          string_of_int !rejected ]
  done;
  T.print t;
  note "first-fit + coalescing keeps fragmentation moderate under churn;";
  note "rejections happen only when the pool is genuinely near-full"

(* ---------------- (d) ECMP state scatter ---------------- *)

let ecmp_scatter () =
  banner "Ablation (d): CQE under ECMP path diversity (state dispersion)";
  let topo = Newton_network.Topo.fat_tree 8 in
  let q = Newton_query.Catalog.q4 ~th:40 () in
  let compiled = compile q in
  let stages = compiled.Newton_compiler.Compose.stats.Newton_compiler.Compose.stages in
  let trace =
    Newton_trace.Gen.generate
      ~attacks:
        [ Newton_trace.Attack.Port_scan
            { scanner = Newton_trace.Attack.host_of 2;
              victim = Newton_trace.Attack.host_of 3; ports = 800 } ]
      ~seed:11
      (Newton_trace.Profile.with_flows Newton_trace.Profile.caida_like 1000)
  in
  let t = T.create ~aligns:[ T.Left; T.Right; T.Right; T.Right ]
      [ "deployment"; "slices"; "dataplane reports"; "deferrals" ] in
  List.iter
    (fun (label, per_switch) ->
      let ctl = Newton_controller.Deploy.create topo in
      let _ = Newton_controller.Deploy.deploy ~stages_per_switch:per_switch ctl compiled in
      Newton_trace.Gen.iter
        (fun p ->
          let src =
            Newton_core.Newton.Network.host_of_ip topo
              (Newton_packet.Packet.get p Newton_packet.Field.Src_ip)
          in
          let dst =
            Newton_core.Newton.Network.host_of_ip topo
              (Newton_packet.Packet.get p Newton_packet.Field.Dst_ip)
          in
          Newton_controller.Deploy.process_packet ctl ~src_host:src ~dst_host:dst p)
        trace;
      let m =
        match (List.hd (Newton_controller.Deploy.deployments ctl)).Newton_controller.Deploy.placement with
        | Some p -> Newton_controller.Placement.num_slices p
        | None -> 1
      in
      T.add_row t
        [ label; string_of_int m;
          string_of_int (List.length (Newton_controller.Deploy.all_reports ctl));
          string_of_int (Newton_controller.Deploy.software_deferrals ctl) ])
    [ ("whole query at the edge (M=1)", stages);
      ("2-way CQE", (stages + 1) / 2);
      ("4-way CQE", (stages + 3) / 4) ];
  T.print t;
  note "multi-flow aggregates lose state across ECMP paths when sliced: the";
  note "scanner's probes hash to different routes, splitting the per-source";
  note "count across switches (the paper evaluates CQE on a fixed chain; §7";
  note "acknowledges state dispersion under path changes)"

(* ---------------- (e) scheduler capacity sweep ---------------- *)

let scheduler_sweep () =
  banner "Ablation (e): scheduler admission & allocation vs register pool";
  let demands () =
    List.concat_map
      (fun q ->
        [ Newton_controller.Scheduler.demand ~weight:4.0 q;
          Newton_controller.Scheduler.demand ~weight:1.0 q ])
      [ Newton_query.Catalog.q1 (); Newton_query.Catalog.q4 ();
        Newton_query.Catalog.q5 () ]
  in
  let t =
    T.create ~aligns:[ T.Right; T.Right; T.Right; T.Right; T.Right ]
      [ "register pool"; "admitted"; "rejected"; "pool used";
        "max regs/array" ]
  in
  List.iter
    (fun pool ->
      let plan = Newton_controller.Scheduler.plan ~register_pool:pool (demands ()) in
      let max_regs =
        List.fold_left
          (fun acc (a : Newton_controller.Scheduler.assignment) ->
            max acc a.Newton_controller.Scheduler.registers)
          0 plan.Newton_controller.Scheduler.admitted
      in
      T.add_row t
        [ string_of_int pool;
          string_of_int (List.length plan.Newton_controller.Scheduler.admitted);
          string_of_int (List.length plan.Newton_controller.Scheduler.rejected);
          string_of_int plan.Newton_controller.Scheduler.pool_used;
          string_of_int max_regs ])
    [ 2_000; 8_000; 32_000; 128_000; 512_000 ];
  T.print t;
  maybe_dat t "ablation_scheduler";
  note "admission saturates as the pool grows; the water-fill converts extra";
  note "memory into wider sketches for the heavy queries up to their ceiling"

let run () =
  layout_capacity ();
  depth_width ();
  register_churn ();
  ecmp_scatter ();
  scheduler_sweep ()
