(** Derived experiment: iterative prefix refinement cost, Newton vs a
    reload-per-step system (Sonata's dynamic scope refinement, §2.2).

    Both systems walk the same refinement tree (/8 → /16 → /24 → /32
    towards a SYN-flood victim); the difference is the price of each
    step: a millisecond rule install for Newton, a full pipeline reload
    for Sonata — during which the switch forwards (and observes)
    nothing. *)

open Common
open Newton_core

let victim = Newton_trace.Attack.host_of 1

let trace () =
  Newton_trace.Gen.generate
    ~attacks:
      [ Newton_trace.Attack.Syn_flood
          { victim; attackers = 40; syns_per_attacker = 25 } ]
    ~seed:42
    (Newton_trace.Profile.with_flows Newton_trace.Profile.caida_like 800)

let run () =
  banner "Prefix refinement: rule updates vs reload-per-step (derived)";
  let tr = trace () in
  let device = Newton.Device.create () in
  let r =
    Refine.create device ~field:Newton_packet.Field.Dst_ip
      ~levels:[ 8; 16; 24; 32 ] ~th:20
  in
  Refine.process_trace r tr;
  Refine.process_trace r tr;
  let found =
    Refine.results r
    |> List.exists (fun (x : Newton.Report.t) -> x.Newton_query.Report.keys.(0) = victim)
  in
  let installs = Refine.installs r in
  let newton_ms = Refine.install_latency r *. 1e3 in
  (* Sonata pays one reload per refinement step. *)
  let reload = Newton_dataplane.Reconfig.reload_outage ~fwd_entries:6000 () in
  let sonata_s = float_of_int installs *. reload in
  let t =
    T.create ~aligns:[ T.Left; T.Right ] [ "metric"; "value" ]
  in
  T.add_row t [ "victim found at /32"; string_of_bool found ];
  T.add_row t [ "refinement queries installed"; string_of_int installs ];
  T.add_row t [ "Newton total reconfiguration"; Printf.sprintf "%.1f ms" newton_ms ];
  T.add_row t
    [ "reload-per-step equivalent (Sonata)"; Printf.sprintf "%.1f s" sonata_s ];
  T.add_row t
    [ "forwarding outage (Newton)";
      Printf.sprintf "%.0f s"
        (Newton_dataplane.Switch.outage_time (Newton.Device.switch device)) ];
  T.print t;
  maybe_dat t "refinement";
  note "the same refinement tree costs milliseconds with rule updates and";
  note "minutes of accumulated outage when every step reloads the pipeline"
