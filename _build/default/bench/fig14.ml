(** Figure 14: monitoring accuracy and false-positive rate of Q1 when
    varying per-array registers (256–4096) and the number of switches the
    query spans.  Sonata is confined to one switch's three register
    arrays; Newton_k spreads the Count-Min rows over k switches via CQE,
    so the effective sketch grows with the path (paper: ~350 % accuracy
    improvement over Sonata at 256 registers). *)

open Common
open Newton_controller

(* Each switch accommodates three register arrays (§6.3). *)
let arrays_per_switch = 3

(* Threshold low relative to the per-window SYN volume so sketch
   collisions at small register counts actually produce false positives
   — the regime the paper's CAIDA windows are in. *)
let q1_threshold = 5

let eval ~registers ~depth trace truth =
  let switches = max 1 ((depth + arrays_per_switch - 1) / arrays_per_switch) in
  let options =
    { Newton_compiler.Decompose.default_options with
      reduce_depth = depth;
      registers }
  in
  let q = Newton_query.Catalog.q1 ~th:q1_threshold () in
  let compiled = compile_with options q in
  let stages = compiled.Newton_compiler.Compose.stats.Newton_compiler.Compose.stages in
  let per_switch = (stages + switches - 1) / switches in
  let topo = Newton_network.Topo.linear switches in
  let ctl = Deploy.create topo in
  let _ = Deploy.deploy ~mode:`Cqe ~stages_per_switch:per_switch ctl compiled in
  let src_host = Newton_network.Topo.num_switches topo in
  let dst_host = src_host + 1 in
  Newton_trace.Gen.iter (fun p -> Deploy.process_packet ctl ~src_host ~dst_host p) trace;
  Newton_runtime.Analyzer.score ~truth ~detected:(Deploy.all_reports ctl)

let run () =
  banner "Figure 14: Q1 accuracy & FPR vs registers per array and path length";
  let trace =
    Newton_trace.Gen.generate
      ~attacks:
        [ Newton_trace.Attack.Syn_flood
            { victim = Newton_trace.Attack.host_of 1; attackers = 60; syns_per_attacker = 40 } ]
      ~seed:42
      (Newton_trace.Profile.with_flows
         { Newton_trace.Profile.caida_like with mean_flow_pkts = 4.0 }
         20_000)
  in
  let truth =
    Newton_query.Ref_eval.evaluate
      (Newton_query.Catalog.q1 ~th:q1_threshold ())
      (Newton_trace.Gen.packets trace)
  in
  let t =
    T.create
      ~aligns:[ T.Right; T.Left; T.Right; T.Right; T.Right ]
      [ "registers"; "system"; "accuracy(precision)"; "recall"; "FPR" ]
  in
  let sonata_acc = ref 1.0 and newton3_acc = ref 1.0 in
  List.iter
    (fun registers ->
      List.iter
        (fun (label, depth) ->
          let a = eval ~registers ~depth trace truth in
          if registers = 256 then begin
            if label = "Sonata" then sonata_acc := a.Newton_runtime.Analyzer.precision;
            if label = "Newton_3" then newton3_acc := a.Newton_runtime.Analyzer.precision
          end;
          T.add_row t
            [ string_of_int registers; label;
              Printf.sprintf "%.3f" a.Newton_runtime.Analyzer.precision;
              Printf.sprintf "%.3f" a.Newton_runtime.Analyzer.recall;
              Printf.sprintf "%.3f" a.Newton_runtime.Analyzer.fpr ])
        (* Sonata's reduce is a single hash-indexed register array;
           Newton_k pools the three arrays of each of k switches. *)
        [ ("Sonata", 1); ("Newton_1", 3); ("Newton_2", 6); ("Newton_3", 9) ])
    [ 256; 512; 1024; 2048; 4096 ];
  T.print t;
  maybe_dat t "fig14";
  note "paper: ~350%% accuracy improvement over Sonata at 256 registers";
  note "measured at 256 registers: Newton_3 %.3f vs Sonata %.3f (%.0f%%)"
    !newton3_acc !sonata_acc (100.0 *. !newton3_acc /. (max 1e-9 !sonata_acc))
