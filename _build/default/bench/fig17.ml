(** Figure 17: network-wide placement of Q4 (Algorithm 2).

    (a) Total and average table entries when the query needs 1..M
        switches (per-switch stage budgets of 10/5/4/3/2), on an 8-ary
        fat-tree (traffic entering at the ToRs) and the NA-ISP backbone
        (traffic emitted from California).
    (b) Entries vs. fat-tree scale: total entries grow linearly with the
        topology while the per-switch average stabilises — placement
        scales to thousand-switch networks. *)

open Common
open Newton_controller

let q4_compiled () = compile (Newton_query.Catalog.q4 ())

let run () =
  banner "Figure 17a: Q4 placement vs required switches (stage budgets 10/5/4/3/2)";
  let compiled = q4_compiled () in
  let stages = compiled.Newton_compiler.Compose.stats.Newton_compiler.Compose.stages in
  note "Q4 after compilation: %d stages, %d table entries per full instance"
    stages compiled.Newton_compiler.Compose.stats.Newton_compiler.Compose.rules;
  let fat = Newton_network.Topo.fat_tree 8 in
  let isp = Newton_network.Topo.isp () in
  let isp_edges = [ 0; 1 ] (* San Francisco, Los Angeles: California *) in
  let t =
    T.create
      ~aligns:[ T.Right; T.Right; T.Right; T.Right; T.Right; T.Right; T.Right ]
      [ "stages/switch"; "req switches"; "FT total"; "FT avg";
        "ISP total"; "ISP avg"; "ISP switches" ]
  in
  List.iter
    (fun n ->
      let pf = Placement.place ~stages_per_switch:n ~topo:fat compiled in
      let pi =
        Placement.place ~edge_switches:isp_edges ~stages_per_switch:n ~topo:isp compiled
      in
      T.add_row t
        [ string_of_int n;
          string_of_int (Placement.num_slices pf);
          string_of_int (Placement.total_entries pf);
          Printf.sprintf "%.1f" (Placement.avg_entries pf);
          string_of_int (Placement.total_entries pi);
          Printf.sprintf "%.1f" (Placement.avg_entries pi);
          string_of_int (Placement.switches_used pi) ])
    [ 10; 5; 4; 3; 2 ];
  T.print t;
  maybe_dat t "fig17a";
  note "paper: entries increase with required switches; growth steeper on the ISP topology";

  banner "Figure 17b: Q4 placement vs fat-tree scale";
  let t =
    T.create
      ~aligns:[ T.Right; T.Right; T.Right; T.Right; T.Right; T.Right ]
      [ "k"; "switches"; "total(M=1)"; "avg(M=1)"; "total(M=2)"; "avg(M=2)" ]
  in
  List.iter
    (fun k ->
      let topo = Newton_network.Topo.fat_tree k in
      let p1 = Placement.place ~stages_per_switch:stages ~topo compiled in
      let p2 =
        Placement.place ~stages_per_switch:((stages + 1) / 2) ~topo compiled
      in
      T.add_row t
        [ string_of_int k;
          string_of_int (Newton_network.Topo.num_switches topo);
          string_of_int (Placement.total_entries p1);
          Printf.sprintf "%.1f" (Placement.avg_entries p1);
          string_of_int (Placement.total_entries p2);
          Printf.sprintf "%.1f" (Placement.avg_entries p2) ])
    [ 4; 8; 16; 32 ];
  T.print t;
  maybe_dat t "fig17b";
  note "paper: total entries grow linearly with scale; average stabilises to a constant"
