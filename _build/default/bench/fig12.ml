(** Figure 12: monitoring overhead (monitoring messages per raw packet)
    of Newton vs. Sonata, *Flow, TurboFlow, FlowRadar and SCREAM on the
    two trace profiles.  Paper: Sonata and Newton export only
    intent-relevant data and sit two orders of magnitude below the
    generic exporters. *)

open Common

let run_trace name trace =
  let packets = Newton_trace.Gen.packets trace in
  let n = Array.length packets in
  (* Newton: all nine queries installed on one device. *)
  let newton = Newton_core.Newton.Device.create () in
  List.iter (fun q -> ignore (Newton_core.Newton.Device.add_query newton q)) (all_queries ());
  Array.iter (Newton_core.Newton.Device.process_packet newton) packets;
  (* Sonata: same on-data-plane queries (overhead matches Newton). *)
  let sonata = Newton_baselines.Sonata.create () in
  List.iter
    (fun q -> ignore (Newton_baselines.Sonata.install_query sonata (compile q)))
    (all_queries ());
  Array.iter (Newton_baselines.Sonata.process_packet sonata) packets;
  (* Generic exporters. *)
  let tf = Newton_baselines.Turboflow.create () in
  Array.iter (Newton_baselines.Turboflow.process tf) packets;
  Newton_baselines.Turboflow.finish tf;
  let sf = Newton_baselines.Starflow.create () in
  Array.iter (Newton_baselines.Starflow.process sf) packets;
  Newton_baselines.Starflow.finish sf;
  let fr = Newton_baselines.Flowradar.create () in
  Array.iter (Newton_baselines.Flowradar.process fr) packets;
  Newton_baselines.Flowradar.finish fr;
  let sc = Newton_baselines.Scream.create () in
  Array.iter (Newton_baselines.Scream.process sc) packets;
  Newton_baselines.Scream.finish sc;
  let ratio msgs = float_of_int msgs /. float_of_int n in
  [ (name ^ "/Newton", ratio (Newton_core.Newton.Device.message_count newton));
    (name ^ "/Sonata", ratio (Newton_baselines.Sonata.message_count sonata));
    (name ^ "/*Flow", ratio (Newton_baselines.Starflow.messages sf));
    (name ^ "/TurboFlow", ratio (Newton_baselines.Turboflow.messages tf));
    (name ^ "/FlowRadar", ratio (Newton_baselines.Flowradar.messages fr));
    (name ^ "/SCREAM", ratio (Newton_baselines.Scream.messages sc)) ]

let run () =
  banner "Figure 12: monitoring overhead (messages per packet)";
  let rows =
    run_trace "caida" (caida_trace ~flows:8000 ())
    @ run_trace "mawi" (mawi_trace ~flows:8000 ())
  in
  let t = T.create ~aligns:[ T.Left; T.Right ] [ "trace/system"; "msgs/pkt" ] in
  List.iter (fun (k, v) -> T.add_row t [ k; Printf.sprintf "%.5f" v ]) rows;
  T.print t;
  maybe_dat t "fig12";
  let get k = List.assoc k rows in
  note "paper: Newton/Sonata two orders of magnitude below *Flow/TurboFlow";
  note "measured (caida): Newton %.5f vs TurboFlow %.5f (ratio %.0fx), *Flow %.5f (%.0fx)"
    (get "caida/Newton") (get "caida/TurboFlow")
    (get "caida/TurboFlow" /. get "caida/Newton")
    (get "caida/*Flow")
    (get "caida/*Flow" /. get "caida/Newton");
  note "FlowRadar ~1%% of packets at 4096 cells (measured caida: %.4f)"
    (get "caida/FlowRadar")
