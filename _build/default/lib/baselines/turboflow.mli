(** TurboFlow export model: a direct-mapped microflow cache whose
    evictions and interval flushes ship one flow record each — overhead
    scales with traffic volume (Fig. 12). *)

type t

val create : ?cache_size:int -> ?interval:float -> unit -> t

(** Monitoring messages exported so far. *)
val messages : t -> int

val packets : t -> int

(** Collision evictions (each also a message). *)
val evictions : t -> int

val process : t -> Newton_packet.Packet.t -> unit

(** Flush resident records (end of measurement). *)
val finish : t -> unit
