(** *Flow export model (Sonchack et al., ATC'18).

    *Flow exports {e grouped packet vectors} (GPVs): the data plane
    buffers per-packet features (timestamp, size, payload, TCP flags) in
    a per-flow cache line and ships the vector to a software analyzer
    whenever it fills ([gpv_len] packets) or the flow is evicted.  All
    query logic runs on CPU over the GPV stream, which makes queries
    fully dynamic but pushes per-packet data off the switch — the
    paper's example: 8 CPU cores to keep up with one 640 Gbps switch.

    An optional [on_gpv] sink receives each exported vector; the
    {!Cpu_analyzer} consumes that stream to answer the same queries
    Newton answers on the data plane. *)

open Newton_packet

(** One packet's features inside a GPV. *)
type feature = {
  f_ts : float;
  f_len : int;
  f_payload : int;
  f_flags : int;
}

(** A grouped packet vector: flow key + buffered per-packet features. *)
type gpv = { g_key : Fivetuple.t; g_features : feature list (** newest first *) }

type slot = { key : Fivetuple.t; mutable buffered : feature list; mutable n : int }

type t = {
  cache : slot option array;
  gpv_len : int; (** packet features per GPV message *)
  on_gpv : gpv -> unit;
  mutable messages : int;
  mutable packets : int;
}

let create ?(cache_size = 4096) ?(gpv_len = 4) ?(on_gpv = fun _ -> ()) () =
  { cache = Array.make cache_size None; gpv_len; on_gpv; messages = 0; packets = 0 }

let messages t = t.messages
let packets t = t.packets

let feature_of pkt =
  {
    f_ts = Packet.ts pkt;
    f_len = Packet.get pkt Field.Pkt_len;
    f_payload = Packet.get pkt Field.Payload_len;
    f_flags = Packet.get pkt Field.Tcp_flags;
  }

let ship t key features =
  t.messages <- t.messages + 1;
  t.on_gpv { g_key = key; g_features = features }

let process t pkt =
  t.packets <- t.packets + 1;
  let key = Fivetuple.of_packet pkt in
  let idx = Fivetuple.hash key mod Array.length t.cache in
  match t.cache.(idx) with
  | Some s when Fivetuple.equal s.key key ->
      s.buffered <- feature_of pkt :: s.buffered;
      s.n <- s.n + 1;
      if s.n >= t.gpv_len then begin
        ship t s.key s.buffered;
        s.buffered <- [];
        s.n <- 0
      end
  | Some s ->
      (* Eviction ships the partial GPV. *)
      if s.n > 0 then ship t s.key s.buffered;
      t.cache.(idx) <- Some { key; buffered = [ feature_of pkt ]; n = 1 }
  | None -> t.cache.(idx) <- Some { key; buffered = [ feature_of pkt ]; n = 1 }

let finish t =
  Array.iter
    (function
      | Some s when s.n > 0 -> ship t s.key s.buffered
      | _ -> ())
    t.cache
