(** *Flow export model: grouped packet vectors (GPVs) of per-packet
    features shipped to a CPU analyzer — fully dynamic queries at the
    cost of per-packet export (Fig. 12/13).  Wire an [on_gpv] sink into
    {!Cpu_analyzer} to actually answer queries from the stream. *)

open Newton_packet

(** One packet's features inside a GPV. *)
type feature = {
  f_ts : float;
  f_len : int;
  f_payload : int;
  f_flags : int;
}

type gpv = { g_key : Fivetuple.t; g_features : feature list (** newest first *) }

type t

val create :
  ?cache_size:int -> ?gpv_len:int -> ?on_gpv:(gpv -> unit) -> unit -> t

(** GPV messages exported so far. *)
val messages : t -> int

val packets : t -> int

val feature_of : Packet.t -> feature

val process : t -> Packet.t -> unit

(** Ship all resident partial GPVs. *)
val finish : t -> unit
