(** The CPU-side analyzer of GPV-based *Flow systems.

    Reconstructs packets from grouped packet vectors and evaluates
    monitoring queries in software with the exact reference evaluator —
    the "dynamic queries on CPU" architecture the paper contrasts with
    Newton's on-data-plane execution (§2.2, §3.1).  Functionally it
    answers the same intents; the cost is that {e every packet's}
    features cross the wire and the CPU touches each one, which is what
    Fig. 12/13 quantify.

    GPVs arrive batched and out of order, so evaluation is windowed
    batch-style: ingest everything, then sort by timestamp and run the
    queries — how a Spark-like analyzer would process micro-batches. *)

open Newton_packet

type t = {
  queries : Newton_query.Ast.t list;
  mutable packets : Packet.t list; (* reconstructed, unsorted *)
  mutable cpu_packets : int;       (** per-packet records the CPU touched *)
  mutable gpvs : int;
}

let create queries = { queries; packets = []; cpu_packets = 0; gpvs = 0 }

let cpu_packets t = t.cpu_packets
let gpvs t = t.gpvs

(* A GPV feature only carries (ts, len, payload, flags) + the flow key;
   that is enough for every query over 5-tuple/flags/length fields. *)
let reconstruct (key : Fivetuple.t) (f : Starflow.feature) =
  Packet.make ~ts:f.Starflow.f_ts ~src_ip:key.Fivetuple.src_ip
    ~dst_ip:key.Fivetuple.dst_ip ~proto:key.Fivetuple.proto
    ~src_port:key.Fivetuple.src_port ~dst_port:key.Fivetuple.dst_port
    ~tcp_flags:f.Starflow.f_flags ~pkt_len:f.Starflow.f_len
    ~payload_len:f.Starflow.f_payload ()

(** Ingest one grouped packet vector. *)
let ingest t (g : Starflow.gpv) =
  t.gpvs <- t.gpvs + 1;
  List.iter
    (fun f ->
      t.cpu_packets <- t.cpu_packets + 1;
      t.packets <- reconstruct g.Starflow.g_key f :: t.packets)
    g.Starflow.g_features

(** Evaluate all queries over everything ingested so far. *)
let results t =
  let packets = Array.of_list t.packets in
  Array.sort (fun a b -> Float.compare (Packet.ts a) (Packet.ts b)) packets;
  List.concat_map
    (fun q -> Newton_query.Ref_eval.evaluate q packets)
    t.queries

(** End-to-end convenience: run [trace] through a *Flow exporter wired
    into a fresh analyzer, returning (analyzer, exporter). *)
let of_trace ?cache_size ?gpv_len queries trace =
  let t = create queries in
  let sf = Starflow.create ?cache_size ?gpv_len ~on_gpv:(ingest t) () in
  Newton_trace.Gen.iter (Starflow.process sf) trace;
  Starflow.finish sf;
  (t, sf)
