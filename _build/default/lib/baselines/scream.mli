(** SCREAM export model: per-interval sketch export to the controller
    for accuracy estimation and rebalancing — between the full-flowset
    and the filtered exporters in Fig. 12. *)

type t

val create :
  ?width:int -> ?depth:int -> ?counters_per_msg:int -> ?interval:float ->
  unit -> t

val messages : t -> int
val packets : t -> int
val process : t -> Newton_packet.Packet.t -> unit
val finish : t -> unit
