(** FlowRadar export model: an encoded flowset exported wholesale every
    measurement interval — overhead fixed per interval regardless of
    traffic (~1 % of packets at 4096 cells). *)

type t

val create :
  ?array_size:int -> ?cells_per_msg:int -> ?interval:float ->
  ?num_hashes:int -> unit -> t

val messages : t -> int
val packets : t -> int
val process : t -> Newton_packet.Packet.t -> unit
val finish : t -> unit
