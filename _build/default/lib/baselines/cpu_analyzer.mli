(** The CPU-side analyzer of GPV-based *Flow systems: reconstructs
    packets from grouped packet vectors and evaluates queries in
    software — same intents as Newton, every packet shipped and
    touched. *)

type t

val create : Newton_query.Ast.t list -> t

(** Per-packet records the CPU has touched. *)
val cpu_packets : t -> int

val gpvs : t -> int

(** Ingest one grouped packet vector. *)
val ingest : t -> Starflow.gpv -> unit

(** Evaluate all queries over everything ingested (windowed batch). *)
val results : t -> Newton_query.Report.t list

(** Run a trace through a *Flow exporter wired into a fresh analyzer. *)
val of_trace :
  ?cache_size:int -> ?gpv_len:int -> Newton_query.Ast.t list ->
  Newton_trace.Gen.t -> t * Starflow.t
