(** FlowRadar export model (Li et al., NSDI'16).

    FlowRadar maintains an {e encoded flowset} — an invertible-Bloom-
    lookup-table-like array of (flow-xor, flow-count, packet-count)
    cells — and exports the whole array to collectors every measurement
    interval for network-wide decoding.  Export cost is therefore fixed
    per interval ([array_size] cells, batched [cells_per_msg] per
    message) regardless of traffic, ≈1 % of packets at the paper's 4096
    cells, but decoding needs a server fleet as networks scale (§6.1). *)

open Newton_packet

type t = {
  array_size : int;
  cells_per_msg : int;
  interval : float;
  num_hashes : int;
  cells : int array; (* packet counts per cell; flow-set encoding elided *)
  mutable window : int;
  mutable messages : int;
  mutable packets : int;
}

let create ?(array_size = 4096) ?(cells_per_msg = 64) ?(interval = 0.1)
    ?(num_hashes = 3) () =
  {
    array_size;
    cells_per_msg;
    interval;
    num_hashes;
    cells = Array.make array_size 0;
    window = 0;
    messages = 0;
    packets = 0;
  }

let messages t = t.messages
let packets t = t.packets

let export t =
  t.messages <- t.messages + ((t.array_size + t.cells_per_msg - 1) / t.cells_per_msg);
  Array.fill t.cells 0 t.array_size 0

let process t pkt =
  t.packets <- t.packets + 1;
  let w = int_of_float (Packet.ts pkt /. t.interval) in
  if w <> t.window then begin
    export t;
    t.window <- w
  end;
  let key = Fivetuple.of_packet pkt in
  let h = Fivetuple.hash key in
  for i = 0 to t.num_hashes - 1 do
    let idx = Newton_sketch.Hash.hash_int ~seed:i h mod t.array_size in
    t.cells.(idx) <- t.cells.(idx) + 1
  done

let finish t = export t
