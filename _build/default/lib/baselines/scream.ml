(** SCREAM export model (Moshref et al., CoNEXT'15).

    SCREAM allocates sketch memory across measurement tasks on software-
    defined switches and periodically ships the sketch counters to the
    controller, which estimates task accuracy and rebalances.  Export
    cost per interval is the configured sketch size (counters batched per
    message) plus the per-task control traffic — between the full-flowset
    exporters and the filtered exporters in Fig. 12. *)

open Newton_packet

type t = {
  width : int;
  depth : int;
  counters_per_msg : int;
  interval : float;
  sketch : Newton_sketch.Count_min.t;
  mutable window : int;
  mutable messages : int;
  mutable packets : int;
}

let create ?(width = 2048) ?(depth = 3) ?(counters_per_msg = 64)
    ?(interval = 0.1) () =
  {
    width;
    depth;
    counters_per_msg;
    interval;
    sketch = Newton_sketch.Count_min.create ~width ~depth ~seed:77;
    window = 0;
    messages = 0;
    packets = 0;
  }

let messages t = t.messages
let packets t = t.packets

let export t =
  let counters = t.width * t.depth in
  t.messages <- t.messages + ((counters + t.counters_per_msg - 1) / t.counters_per_msg);
  Newton_sketch.Count_min.clear t.sketch

let process t pkt =
  t.packets <- t.packets + 1;
  let w = int_of_float (Packet.ts pkt /. t.interval) in
  if w <> t.window then begin
    export t;
    t.window <- w
  end;
  let key =
    [| Packet.get pkt Field.Src_ip; Packet.get pkt Field.Dst_ip;
       Packet.get pkt Field.Proto |]
  in
  ignore (Newton_sketch.Count_min.add t.sketch key 1)

let finish t = export t
