lib/baselines/sonata.ml: Engine List Newton_compiler Newton_dataplane Newton_runtime Switch
