lib/baselines/cpu_analyzer.mli: Newton_query Newton_trace Starflow
