lib/baselines/starflow.ml: Array Field Fivetuple Newton_packet Packet
