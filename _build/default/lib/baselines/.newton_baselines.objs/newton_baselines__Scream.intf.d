lib/baselines/scream.mli: Newton_packet
