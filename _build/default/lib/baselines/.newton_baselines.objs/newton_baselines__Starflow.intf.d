lib/baselines/starflow.mli: Fivetuple Newton_packet Packet
