lib/baselines/cpu_analyzer.ml: Array Fivetuple Float List Newton_packet Newton_query Newton_trace Packet Starflow
