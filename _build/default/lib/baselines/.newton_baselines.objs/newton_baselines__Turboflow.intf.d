lib/baselines/turboflow.mli: Newton_packet
