lib/baselines/flowradar.ml: Array Fivetuple Newton_packet Newton_sketch Packet
