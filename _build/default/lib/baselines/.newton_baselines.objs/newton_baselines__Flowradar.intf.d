lib/baselines/flowradar.mli: Newton_packet
