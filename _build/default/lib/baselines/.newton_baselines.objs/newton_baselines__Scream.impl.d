lib/baselines/scream.ml: Field Newton_packet Newton_sketch Packet
