lib/baselines/turboflow.ml: Array Field Fivetuple Newton_packet Packet
