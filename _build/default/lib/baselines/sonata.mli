(** Sonata baseline: the same on-data-plane query semantics as Newton
    (its engine is reused), but every query operation compiles a new P4
    program — a full reload that interrupts forwarding for seconds and
    wipes all monitoring state (Fig. 10). *)

type t

val create : ?fwd_entries:int -> ?switch_id:int -> unit -> t

val switch : t -> Newton_dataplane.Switch.t
val engine : t -> Newton_runtime.Engine.t

(** Reload outages so far, oldest first. *)
val outages : t -> float list

val total_outage : t -> float

(** Install a query: recompile + reboot.  Returns the forwarding outage
    in seconds. *)
val install_query :
  ?offered_pps:float -> t -> Newton_compiler.Compose.t -> float

val remove_query :
  ?offered_pps:float -> t -> Newton_compiler.Compose.t -> float

val process_packet : t -> Newton_packet.Packet.t -> unit
val reports : t -> Newton_query.Report.t list
val message_count : t -> int
