(** TurboFlow export model (Sonchack et al., EuroSys'18).

    TurboFlow generates {e information-rich flow records} on commodity
    switches: the data plane keeps a fixed-size, direct-mapped microflow
    cache keyed by 5-tuple; on a hash collision the incumbent record is
    evicted to the switch CPU / collector (one monitoring message), and
    at the end of each measurement interval every resident record is
    flushed.  Every flow therefore crosses the wire at least once per
    interval — which is exactly why its overhead scales with traffic
    volume (§2.2, Fig. 12). *)

open Newton_packet

type record = {
  key : Fivetuple.t;
  mutable pkts : int;
  mutable bytes : int;
  mutable first_ts : float;
  mutable last_ts : float;
}

type t = {
  cache : record option array;
  interval : float;           (** flush period, seconds *)
  mutable window : int;
  mutable messages : int;
  mutable packets : int;
  mutable evictions : int;
}

let create ?(cache_size = 8192) ?(interval = 0.1) () =
  {
    cache = Array.make cache_size None;
    interval;
    window = 0;
    messages = 0;
    packets = 0;
    evictions = 0;
  }

let messages t = t.messages
let packets t = t.packets
let evictions t = t.evictions

let flush t =
  Array.iteri
    (fun i r ->
      match r with
      | Some _ ->
          t.messages <- t.messages + 1;
          t.cache.(i) <- None
      | None -> ())
    t.cache

let process t pkt =
  t.packets <- t.packets + 1;
  let w = int_of_float (Packet.ts pkt /. t.interval) in
  if w <> t.window then begin
    flush t;
    t.window <- w
  end;
  let key = Fivetuple.of_packet pkt in
  let idx = Fivetuple.hash key mod Array.length t.cache in
  match t.cache.(idx) with
  | Some r when Fivetuple.equal r.key key ->
      r.pkts <- r.pkts + 1;
      r.bytes <- r.bytes + Packet.get pkt Field.Pkt_len;
      r.last_ts <- Packet.ts pkt
  | Some _ ->
      (* Collision: evict the incumbent to the collector. *)
      t.messages <- t.messages + 1;
      t.evictions <- t.evictions + 1;
      t.cache.(idx) <-
        Some
          {
            key;
            pkts = 1;
            bytes = Packet.get pkt Field.Pkt_len;
            first_ts = Packet.ts pkt;
            last_ts = Packet.ts pkt;
          }
  | None ->
      t.cache.(idx) <-
        Some
          {
            key;
            pkts = 1;
            bytes = Packet.get pkt Field.Pkt_len;
            first_ts = Packet.ts pkt;
            last_ts = Packet.ts pkt;
          }

let finish t = flush t
