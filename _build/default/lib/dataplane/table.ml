(** Generic runtime-reconfigurable match-action table.

    This is the "second type" of reconfigurability in the paper (§2.1):
    table rules can be added/removed in a running switch.  The table is
    polymorphic in its action payload — each Newton module interprets its
    own action type — and matches a fixed-width vector of key values with
    ternary/range semantics in priority order, like a TCAM. *)

type mtch =
  | Any
  | Exact of int
  | Ternary of { value : int; mask : int }  (** key & mask = value & mask *)
  | Range of { lo : int; hi : int }         (** lo <= key <= hi *)

type 'a rule = {
  id : int;
  priority : int; (* higher wins *)
  matches : mtch array;
  action : 'a;
}

type 'a t = {
  name : string;
  key_width : int;        (* number of key components *)
  capacity : int;         (* max rules; hardware table size *)
  mutable rules : 'a rule list; (* kept sorted by priority desc, id asc *)
  mutable next_id : int;
  mutable lookups : int;  (* lifetime lookup counter *)
  mutable hits : int;
}

let create ?(capacity = 256) ~name ~key_width () =
  if key_width <= 0 then invalid_arg "Table.create: key_width must be positive";
  { name; key_width; capacity; rules = []; next_id = 0; lookups = 0; hits = 0 }

let name t = t.name
let key_width t = t.key_width
let capacity t = t.capacity
let size t = List.length t.rules
let lookups t = t.lookups
let hits t = t.hits

let matches_value m key =
  match m with
  | Any -> true
  | Exact v -> key = v
  | Ternary { value; mask } -> key land mask = value land mask
  | Range { lo; hi } -> key >= lo && key <= hi

let rule_matches rule keys =
  let ok = ref true in
  Array.iteri (fun i m -> if !ok && not (matches_value m keys.(i)) then ok := false) rule.matches;
  !ok

exception Table_full of string

(** Install a rule; returns its id for later removal.  Raises
    [Table_full] when the hardware capacity is exhausted — callers (the
    controller) handle this by spilling to another module suite/switch. *)
let add t ~priority ~matches action =
  if Array.length matches <> t.key_width then
    invalid_arg
      (Printf.sprintf "Table.add(%s): expected %d match fields, got %d" t.name
         t.key_width (Array.length matches));
  if size t >= t.capacity then raise (Table_full t.name);
  let id = t.next_id in
  t.next_id <- id + 1;
  let rule = { id; priority; matches; action } in
  let rec insert = function
    | [] -> [ rule ]
    | r :: rest when r.priority < priority -> rule :: r :: rest
    | r :: rest -> r :: insert rest
  in
  t.rules <- insert t.rules;
  id

let remove t id =
  let before = size t in
  t.rules <- List.filter (fun r -> r.id <> id) t.rules;
  size t < before

let clear t = t.rules <- []

(** Priority-ordered lookup; first matching rule wins (TCAM semantics). *)
let lookup t keys =
  if Array.length keys <> t.key_width then
    invalid_arg
      (Printf.sprintf "Table.lookup(%s): expected %d keys, got %d" t.name
         t.key_width (Array.length keys));
  t.lookups <- t.lookups + 1;
  let rec go = function
    | [] -> None
    | r :: rest -> if rule_matches r keys then Some r else go rest
  in
  match go t.rules with
  | Some r ->
      t.hits <- t.hits + 1;
      Some r.action
  | None -> None

(** All matching rules' actions in priority order — used by classifiers
    that dispatch one packet to several chained queries. *)
let lookup_all t keys =
  if Array.length keys <> t.key_width then
    invalid_arg
      (Printf.sprintf "Table.lookup_all(%s): expected %d keys, got %d" t.name
         t.key_width (Array.length keys));
  t.lookups <- t.lookups + 1;
  let actions = List.filter_map (fun r -> if rule_matches r keys then Some r.action else None) t.rules in
  if actions <> [] then t.hits <- t.hits + 1;
  actions

let iter_rules f t = List.iter f t.rules
let rules t = t.rules

(** Find ids of rules whose action satisfies [pred] (e.g. "belongs to
    query q") — how the controller locates rules to uninstall. *)
let find_ids t pred =
  List.filter_map (fun r -> if pred r.action then Some r.id else None) t.rules
