(** Reconfiguration timing model: runtime rule updates (Newton —
    milliseconds, no forwarding interruption) vs. full P4 program
    reloads (Sonata — seconds of outage growing linearly with the
    forwarding-table population; Fig. 10/11). *)

(** Fixed driver round-trip cost per batched install, seconds. *)
val install_base : float

(** Mean per-rule install latency within a batch, seconds. *)
val rule_install_mean : float

val remove_base : float
val rule_remove_mean : float

(** Fixed drain + reload + bring-up time of a full program reload,
    seconds. *)
val reload_fixed : float

(** Per-forwarding-entry restore cost after a reload, seconds. *)
val reload_per_entry : float

(** Latency of installing [rules] table rules (one batched driver call;
    jitter drawn from the seeded generator). *)
val install_latency : Newton_util.Prng.t -> rules:int -> float

val remove_latency : Newton_util.Prng.t -> rules:int -> float

(** Forwarding outage of a full reload restoring [fwd_entries] rules.
    Newton never pays this; Sonata pays it on every query operation. *)
val reload_outage : ?rng:Newton_util.Prng.t -> fwd_entries:int -> unit -> float
