(** Resource cost model for Newton modules, calibrated against the
    paper's Table 3 (values normalised by the switch.p4 footprint). *)

(** Rule capacity per module table (§6.2 configures 256). *)
val rules_per_module : int

(** Default registers per state-bank array. *)
val default_registers : int

(** Whole-pipeline footprint of the switch.p4-like forwarding program,
    the normalisation reference of Table 3. *)
val switchp4_usage : Resource.t

val key_selection : Resource.t
val hash_calculation : Resource.t

(** State-bank cost grows with its register allocation. *)
val state_bank : ?registers:int -> unit -> Resource.t

val result_process : Resource.t

(** The four module kinds. *)
type kind = K | H | S | R

val cost : kind -> Resource.t
val kind_to_string : kind -> string

(** Long-form name ("Field Selection", ...). *)
val kind_name : kind -> string

val all_kinds : kind list

(** One full module suite (K+H+S+R) — the per-stage cost of the compact
    layout. *)
val suite : Resource.t

(** Per-stage cost of the naive one-module-per-stage layout. *)
val naive_per_stage : Resource.t

(** The newton_init classifier (ternary 5-tuple + TCP flags). *)
val newton_init : Resource.t

(** The newton_fin SP-snapshot table for CQE. *)
val newton_fin : Resource.t

(** Amortised share of a module per installed rule. *)
val amortized : kind -> Resource.t

(** Cost of a primitive occupying [suites] module suites (1 for
    filter/map, the sketch depth for reduce/distinct). *)
val primitive_cost : suites:int -> Resource.t
