(** A programmable switch: a pipeline of stages with resource
    accounting, forwarding state, and the two reconfiguration regimes of
    {!Reconfig}.  Agnostic of Newton module semantics — the runtime
    builds those on top. *)

type t

(** Tofino-style default: 12 stages per pipeline. *)
val default_stages : int

(** Typical switch.p4 forwarding-table population. *)
val default_fwd_entries : int

val create :
  ?stages:int -> ?fwd_entries:int -> ?stage_budget:Resource.t -> ?seed:int ->
  id:int -> unit -> t

val id : t -> int
val num_stages : t -> int
val stage : t -> int -> Stage.t
val stages : t -> Stage.t array
val fwd_entries : t -> int
val set_fwd_entries : t -> int -> unit

(** Monitoring rules currently installed. *)
val monitor_rules : t -> int

(** Lifetime rule install+remove operations. *)
val rule_ops : t -> int

(** Cumulative forwarding outage, seconds (always 0 for rule-level
    reconfiguration). *)
val outage_time : t -> float

(** Place a component into a stage.
    @raise Stage.Stage_full when the stage budget is exceeded. *)
val place : t -> stage:int -> name:string -> Resource.t -> unit

val can_place : t -> stage:int -> Resource.t -> bool

(** Runtime rule installation; returns the simulated latency in seconds.
    Forwarding is never interrupted. *)
val install_rules : t -> count:int -> float

val remove_rules : t -> count:int -> float

(** Full program reload (the Sonata path): forwarding stops for the
    returned seconds; [offered_pps] converts the outage into dropped
    packets. *)
val full_reload : ?offered_pps:float -> t -> float

val dropped_during_outage : t -> int

val total_used : t -> Resource.t
val total_budget : t -> Resource.t
