(** Register allocation among concurrent queries (§4.1's "flexible
    register allocation"): several queries share physical register
    arrays, each owning a disjoint range addressed through a {!View}.
    First-fit allocation with block splitting and coalescing on free. *)

type range = { array_id : int; offset : int; length : int }

type t

(** @raise Invalid_argument on non-positive sizes. *)
val create : arrays:int -> registers_per_array:int -> t

val total_registers : t -> int
val allocated_registers : t -> int
val free_registers : t -> int

(** Largest single free block. *)
val largest_free_block : t -> int

(** Fraction of free memory outside each array's largest free block
    (0 = free memory maximally contiguous). *)
val fragmentation : t -> float

(** First-fit allocation; [None] when no block is large enough.
    @raise Invalid_argument on a non-positive size. *)
val alloc : t -> registers:int -> range option

exception Not_allocated

(** Return a range to the pool, zeroing its registers.
    @raise Not_allocated for a range not currently live. *)
val free : t -> range -> unit

(** The register window a query's state bank indexes through; indices
    wrap modulo the view length (H's configurable output range). *)
module View : sig
  type alloc = t
  type t

  val length : t -> int
  val exec : t -> Newton_sketch.Alu.t -> int -> int
  val get : t -> int -> int
  val clear : t -> unit
  val occupancy : t -> int
end

val view : t -> range -> View.t

val alloc_view : t -> registers:int -> View.t option

(** How many queries of a given per-query register demand still fit. *)
val capacity : t -> per_query:int -> int
