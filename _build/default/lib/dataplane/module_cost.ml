(** Resource cost model for Newton modules, calibrated against Table 3.

    Costs are structural: each module's vector follows from what it is
    built of (match-key widths feed the crossbar, rule capacity feeds
    SRAM, register arrays feed SRAM+SALU, ternary matching feeds TCAM,
    action complexity feeds VLIW).  The [switchp4_usage] reference vector
    models the resource footprint of the `switch.p4` baseline program the
    paper normalises against; percentages we print in the Table 3
    reproduction are [module cost / switchp4_usage].

    Absolute unit choices (bits / blocks / slots) track Tofino-like
    proportions; see {!Resource.stage_budget}. *)

(** Default rule capacity per module table, as configured in §6.2. *)
let rules_per_module = 256

(** Default registers per state-bank array. *)
let default_registers = 4096

(** Whole-pipeline resource usage of the switch.p4-like forwarding
    program (L2/L3 switching, ACLs, tunnels across 12 stages). *)
let switchp4_usage =
  Resource.make ~crossbar:6900. ~sram:570. ~tcam:190. ~vliw:300.
    ~hash_bits:3600. ~salu:36. ~gateway:140. ()

(** Key selection (K): exact match on a 16-bit class id; 256 rules of
    wide action data (one mask per global field); mask writes are VLIW
    ops; a gateway guards the module's enable bit. *)
let key_selection =
  Resource.make ~crossbar:16. ~sram:4. ~vliw:10.5 ~hash_bits:40. ~gateway:2. ()

(** Hash calculation (H): the full masked key vector enters the hash
    crossbar; the hash distribution unit consumes hash bits; direct mode
    costs a couple of VLIW moves. *)
let hash_calculation =
  Resource.make ~crossbar:185. ~sram:2. ~vliw:2.1 ~hash_bits:57. ()

(** State bank (S): register array (SRAM) + stateful ALUs; ternary match
    on (class id, flags) to pick the ALU program uses a little TCAM; index
    computation uses hash bits. *)
let state_bank ?(registers = default_registers) () =
  (* 4-byte registers; one SRAM block = 16 KB. *)
  let reg_blocks = float_of_int (registers * 4) /. 16384.0 in
  Resource.make ~crossbar:84. ~sram:(4. +. reg_blocks *. 16.) ~tcam:4. ~vliw:6.3
    ~hash_bits:79. ~salu:2. ()

(** Result process (R): ternary/range matching over the 32-bit state
    result (TCAM-heavy) and the richest action set — report, ALU over the
    global result, continue/stop — hence the largest VLIW footprint. *)
let result_process =
  Resource.make ~crossbar:42. ~sram:2. ~tcam:8. ~vliw:31.7 ()

type kind = K | H | S | R

let cost = function
  | K -> key_selection
  | H -> hash_calculation
  | S -> state_bank ()
  | R -> result_process

let kind_to_string = function K -> "K" | H -> "H" | S -> "S" | R -> "R"

let kind_name = function
  | K -> "Field Selection"
  | H -> "Hash Calculation"
  | S -> "State Bank"
  | R -> "Result Process"

let all_kinds = [ K; H; S; R ]

(** One full module suite (K+H+S+R), the per-stage cost of the compact
    layout. *)
let suite = Resource.sum (List.map cost all_kinds)

(** Per-stage cost of the naive layout (one module per stage): averaged
    over the four stages a suite occupies. *)
let naive_per_stage = Resource.scale suite 0.25

(** [newton_init] classifier: ternary over 5-tuple + TCP flags
    (104 + 8 = 112 bits of TCAM input). *)
let newton_init =
  Resource.make ~crossbar:112. ~sram:2. ~tcam:8. ~vliw:2. ~gateway:1. ()

(** [newton_fin] snapshot table for CQE: writes the 12-byte SP header. *)
let newton_fin = Resource.make ~crossbar:16. ~sram:1. ~vliw:7. ~gateway:1. ()

(** Amortised per-rule (per-primitive-instance) cost of a module: each
    module accommodates [rules_per_module] rules, so one primitive's rule
    in it costs 1/256 of the module (§6.2 "Primitive resource
    utilization"). Stateful primitives additionally consume their share of
    register memory via the suites they occupy. *)
let amortized kind = Resource.scale (cost kind) (1.0 /. float_of_int rules_per_module)

(** Cost of a primitive occupying [suites] module suites (1 for
    filter/map, sketch depth for reduce/distinct). *)
let primitive_cost ~suites =
  Resource.scale suite (float_of_int suites /. float_of_int rules_per_module)
