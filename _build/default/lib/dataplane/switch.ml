(** A programmable switch: a pipeline of stages, forwarding state, and a
    reconfiguration interface with the two regimes of {!Reconfig}.

    The switch is deliberately agnostic of Newton module semantics — it
    provides stages with resource accounting, register-array allocation
    and rule-count/timing bookkeeping.  [Newton_runtime] builds the module
    machinery on top. *)

type t = {
  id : int;
  stages : Stage.t array;
  mutable fwd_entries : int;      (* forwarding rules of the resident program *)
  mutable monitor_rules : int;    (* currently installed monitoring rules *)
  mutable rule_ops : int;         (* lifetime install+remove operations *)
  mutable outage_time : float;    (* cumulative seconds of forwarding outage *)
  mutable dropped_during_outage : int;
  rng : Newton_util.Prng.t;
}

(** Tofino-style default: 12 stages per pipeline (§4.3). *)
let default_stages = 12

(** Typical switch.p4 forwarding-table population. *)
let default_fwd_entries = 6000

let create ?(stages = default_stages) ?(fwd_entries = default_fwd_entries)
    ?(stage_budget = Resource.stage_budget) ?(seed = 7) ~id () =
  {
    id;
    stages = Array.init stages (fun i -> Stage.create ~budget:stage_budget i);
    fwd_entries;
    monitor_rules = 0;
    rule_ops = 0;
    outage_time = 0.0;
    dropped_during_outage = 0;
    rng = Newton_util.Prng.of_int (seed + (id * 65537));
  }

let id t = t.id
let num_stages t = Array.length t.stages
let stage t i = t.stages.(i)
let stages t = t.stages
let fwd_entries t = t.fwd_entries
let set_fwd_entries t n = t.fwd_entries <- n
let monitor_rules t = t.monitor_rules
let rule_ops t = t.rule_ops
let outage_time t = t.outage_time

(** Place a component (module table / register array) into a stage.
    Raises [Stage.Stage_full] when the stage budget is exceeded. *)
let place t ~stage ~name cost = Stage.place t.stages.(stage) ~name cost

let can_place t ~stage cost = Stage.can_place t.stages.(stage) cost

(** Runtime rule installation: returns the simulated latency in seconds.
    Forwarding is not interrupted (outage_time unchanged). *)
let install_rules t ~count =
  t.monitor_rules <- t.monitor_rules + count;
  t.rule_ops <- t.rule_ops + count;
  Reconfig.install_latency t.rng ~rules:count

let remove_rules t ~count =
  t.monitor_rules <- max 0 (t.monitor_rules - count);
  t.rule_ops <- t.rule_ops + count;
  Reconfig.remove_latency t.rng ~rules:count

(** Full program reload (the Sonata path): forwarding stops for the
    returned number of seconds.  [offered_pps] converts the outage into a
    packet-drop count for throughput-timeline experiments. *)
let full_reload ?(offered_pps = 0.0) t =
  let outage = Reconfig.reload_outage ~rng:t.rng ~fwd_entries:t.fwd_entries () in
  t.outage_time <- t.outage_time +. outage;
  t.dropped_during_outage <-
    t.dropped_during_outage + int_of_float (outage *. offered_pps);
  outage

let dropped_during_outage t = t.dropped_during_outage

(** Aggregate resource usage across all stages. *)
let total_used t =
  Array.fold_left (fun acc s -> Resource.add acc (Stage.used s)) Resource.zero t.stages

let total_budget t =
  Array.fold_left (fun acc s -> Resource.add acc (Stage.budget s)) Resource.zero t.stages
