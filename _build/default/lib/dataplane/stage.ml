(** A physical pipeline stage: a resource budget plus the components
    placed into it.  Placement fails when the summed resource vector of
    the stage's components would exceed the budget — this is what makes
    the naive-vs-compact layout comparison (§4.2) meaningful. *)

type component = { name : string; cost : Resource.t }

type t = {
  index : int;
  budget : Resource.t;
  mutable used : Resource.t;
  mutable components : component list;
}

let create ?(budget = Resource.stage_budget) index =
  { index; budget; used = Resource.zero; components = [] }

let index t = t.index
let used t = t.used
let budget t = t.budget
let components t = List.rev t.components

(** [can_place t cost] — would [cost] still fit? *)
let can_place t cost = Resource.fits (Resource.add t.used cost) t.budget

exception Stage_full of { stage : int; component : string }

let place t ~name cost =
  if not (can_place t cost) then raise (Stage_full { stage = t.index; component = name });
  t.used <- Resource.add t.used cost;
  t.components <- { name; cost } :: t.components

let unplace t ~name =
  match List.find_opt (fun c -> c.name = name) t.components with
  | None -> false
  | Some c ->
      t.used <- Resource.sub t.used c.cost;
      t.components <- List.filter (fun x -> x.name <> name) t.components;
      true

let utilization t = Resource.utilization t.used t.budget
