(** Generic runtime-reconfigurable match-action table: priority-ordered
    ternary/range matching over a fixed-width key vector, with rules
    added and removed in a running switch — the reconfigurability Newton
    builds queries from (§2.1). Polymorphic in the action payload. *)

type mtch =
  | Any
  | Exact of int
  | Ternary of { value : int; mask : int }  (** key & mask = value & mask *)
  | Range of { lo : int; hi : int }         (** lo <= key <= hi *)

type 'a rule = {
  id : int;
  priority : int; (** higher wins *)
  matches : mtch array;
  action : 'a;
}

type 'a t

(** @raise Invalid_argument if [key_width <= 0]. *)
val create : ?capacity:int -> name:string -> key_width:int -> unit -> 'a t

val name : 'a t -> string
val key_width : 'a t -> int
val capacity : 'a t -> int

(** Current number of installed rules. *)
val size : 'a t -> int

val lookups : 'a t -> int
val hits : 'a t -> int

exception Table_full of string

(** Install a rule; returns its id.
    @raise Table_full when the capacity is exhausted.
    @raise Invalid_argument on a match-arity mismatch. *)
val add : 'a t -> priority:int -> matches:mtch array -> 'a -> int

(** Remove by id; [false] if unknown. *)
val remove : 'a t -> int -> bool

val clear : 'a t -> unit

(** Priority-ordered lookup; first matching rule's action (TCAM
    semantics).
    @raise Invalid_argument on a key-arity mismatch. *)
val lookup : 'a t -> int array -> 'a option

(** All matching rules' actions, priority order.
    @raise Invalid_argument on a key-arity mismatch. *)
val lookup_all : 'a t -> int array -> 'a list

val iter_rules : ('a rule -> unit) -> 'a t -> unit
val rules : 'a t -> 'a rule list

(** Rule ids whose action satisfies a predicate (e.g. "belongs to query
    q", for uninstallation). *)
val find_ids : 'a t -> ('a -> bool) -> int list
