(** Data-plane resource vectors: the seven per-stage resource types of
    an RMT switch (the columns of the paper's Table 3). *)

type t = {
  crossbar : float;  (** match-input crossbar bits *)
  sram : float;      (** SRAM blocks *)
  tcam : float;      (** TCAM blocks *)
  vliw : float;      (** VLIW action-instruction slots *)
  hash_bits : float; (** hash-distribution-unit bits *)
  salu : float;      (** stateful ALUs *)
  gateway : float;   (** gateway (predication) units *)
}

val zero : t

val make :
  ?crossbar:float -> ?sram:float -> ?tcam:float -> ?vliw:float ->
  ?hash_bits:float -> ?salu:float -> ?gateway:float -> unit -> t

val add : t -> t -> t
val sub : t -> t -> t
val scale : t -> float -> t
val sum : t list -> t

(** Componentwise [used <= budget] (with epsilon). *)
val fits : t -> t -> bool

(** Componentwise used/budget ratios (0 where the budget is 0). *)
val utilization : t -> t -> t

(** Per-stage budget of the modelled switch (Tofino-like proportions). *)
val stage_budget : t

val to_assoc : t -> (string * float) list

(** Column names matching {!to_assoc}'s order. *)
val names : string list

val pp : Format.formatter -> t -> unit
