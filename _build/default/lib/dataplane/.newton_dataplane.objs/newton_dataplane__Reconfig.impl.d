lib/dataplane/reconfig.ml: Newton_util
