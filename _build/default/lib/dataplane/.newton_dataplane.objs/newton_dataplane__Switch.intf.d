lib/dataplane/switch.mli: Resource Stage
