lib/dataplane/stage.ml: List Resource
