lib/dataplane/module_cost.ml: List Resource
