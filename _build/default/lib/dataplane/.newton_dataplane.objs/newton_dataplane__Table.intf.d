lib/dataplane/table.mli:
