lib/dataplane/reconfig.mli: Newton_util
