lib/dataplane/stage.mli: Resource
