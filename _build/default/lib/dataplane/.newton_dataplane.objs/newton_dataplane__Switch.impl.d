lib/dataplane/switch.ml: Array Newton_util Reconfig Resource Stage
