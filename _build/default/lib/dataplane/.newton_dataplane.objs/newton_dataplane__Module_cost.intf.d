lib/dataplane/module_cost.mli: Resource
