lib/dataplane/register_alloc.ml: Array List Newton_sketch Option Register_array
