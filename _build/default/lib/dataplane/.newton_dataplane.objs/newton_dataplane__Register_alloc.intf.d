lib/dataplane/register_alloc.mli: Newton_sketch
