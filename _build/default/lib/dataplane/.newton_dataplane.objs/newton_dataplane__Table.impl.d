lib/dataplane/table.ml: Array List Printf
