(** A physical pipeline stage: a resource budget plus placed
    components; placement fails when the budget would be exceeded. *)

type component = { name : string; cost : Resource.t }

type t

val create : ?budget:Resource.t -> int -> t

val index : t -> int
val used : t -> Resource.t
val budget : t -> Resource.t

(** Components in placement order. *)
val components : t -> component list

(** Would this cost still fit? *)
val can_place : t -> Resource.t -> bool

exception Stage_full of { stage : int; component : string }

(** @raise Stage_full when the stage budget would be exceeded. *)
val place : t -> name:string -> Resource.t -> unit

(** Remove a component by name; [false] if absent. *)
val unplace : t -> name:string -> bool

val utilization : t -> Resource.t
