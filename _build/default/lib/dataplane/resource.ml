(** Data-plane resource vectors.

    An RMT-style switch stage offers seven resource types (the columns of
    the paper's Table 3): match crossbar input bits, SRAM blocks, TCAM
    blocks, VLIW action slots, hash bits, stateful ALUs and gateways
    (predication units for if/else in the control flow).  Tables, register
    arrays and control-flow logic each consume a vector of these; a stage
    can host a set of components only if their summed vector fits the
    stage budget. *)

type t = {
  crossbar : float;  (** match-input crossbar bits *)
  sram : float;      (** SRAM blocks *)
  tcam : float;      (** TCAM blocks *)
  vliw : float;      (** VLIW action-instruction slots *)
  hash_bits : float; (** hash-distribution-unit bits *)
  salu : float;      (** stateful ALUs *)
  gateway : float;   (** gateway (predication) units *)
}

let zero =
  { crossbar = 0.; sram = 0.; tcam = 0.; vliw = 0.; hash_bits = 0.; salu = 0.; gateway = 0. }

let make ?(crossbar = 0.) ?(sram = 0.) ?(tcam = 0.) ?(vliw = 0.) ?(hash_bits = 0.)
    ?(salu = 0.) ?(gateway = 0.) () =
  { crossbar; sram; tcam; vliw; hash_bits; salu; gateway }

let add a b =
  {
    crossbar = a.crossbar +. b.crossbar;
    sram = a.sram +. b.sram;
    tcam = a.tcam +. b.tcam;
    vliw = a.vliw +. b.vliw;
    hash_bits = a.hash_bits +. b.hash_bits;
    salu = a.salu +. b.salu;
    gateway = a.gateway +. b.gateway;
  }

let sub a b =
  {
    crossbar = a.crossbar -. b.crossbar;
    sram = a.sram -. b.sram;
    tcam = a.tcam -. b.tcam;
    vliw = a.vliw -. b.vliw;
    hash_bits = a.hash_bits -. b.hash_bits;
    salu = a.salu -. b.salu;
    gateway = a.gateway -. b.gateway;
  }

let scale a k =
  {
    crossbar = a.crossbar *. k;
    sram = a.sram *. k;
    tcam = a.tcam *. k;
    vliw = a.vliw *. k;
    hash_bits = a.hash_bits *. k;
    salu = a.salu *. k;
    gateway = a.gateway *. k;
  }

let sum = List.fold_left add zero

(** [fits used budget] — componentwise [used <= budget] (with epsilon). *)
let fits used budget =
  let eps = 1e-9 in
  used.crossbar <= budget.crossbar +. eps
  && used.sram <= budget.sram +. eps
  && used.tcam <= budget.tcam +. eps
  && used.vliw <= budget.vliw +. eps
  && used.hash_bits <= budget.hash_bits +. eps
  && used.salu <= budget.salu +. eps
  && used.gateway <= budget.gateway +. eps

(** Componentwise utilisation ratios (used / budget). *)
let utilization used budget =
  let r u b = if b = 0.0 then 0.0 else u /. b in
  {
    crossbar = r used.crossbar budget.crossbar;
    sram = r used.sram budget.sram;
    tcam = r used.tcam budget.tcam;
    vliw = r used.vliw budget.vliw;
    hash_bits = r used.hash_bits budget.hash_bits;
    salu = r used.salu budget.salu;
    gateway = r used.gateway budget.gateway;
  }

(** Per-stage budget of our modelled switch, Tofino-like proportions:
    1280 crossbar bits, 80 SRAM blocks, 24 TCAM blocks, 224 VLIW slots
    (one ALU per PHV container), 416 hash bits, 4 stateful ALUs, 16
    gateways. *)
let stage_budget =
  {
    crossbar = 1280.;
    sram = 80.;
    tcam = 24.;
    vliw = 224.;
    hash_bits = 416.;
    salu = 4.;
    gateway = 16.;
  }

let to_assoc t =
  [
    ("Crossbar", t.crossbar);
    ("SRAM", t.sram);
    ("TCAM", t.tcam);
    ("VLIW", t.vliw);
    ("Hash Bits", t.hash_bits);
    ("SALU", t.salu);
    ("Gateway", t.gateway);
  ]

let names = [ "Crossbar"; "SRAM"; "TCAM"; "VLIW"; "Hash Bits"; "SALU"; "Gateway" ]

let pp fmt t =
  Format.fprintf fmt
    "{xbar=%.2f sram=%.2f tcam=%.2f vliw=%.2f hash=%.2f salu=%.2f gw=%.2f}"
    t.crossbar t.sram t.tcam t.vliw t.hash_bits t.salu t.gateway
