(** Register allocation among concurrent queries.

    The state bank supports "flexible register allocation among different
    queries" (§4.1): H's configurable output range lets several queries'
    stateful primitives share one physical register array, each owning a
    disjoint [offset, offset+length) range.  This module manages those
    ranges — first-fit allocation with block splitting and coalescing on
    free — and provides {!View}s that index into the owning array.

    Capacity planning for concurrent queries (Fig. 16) and the
    register-sharing ablation bench build on this. *)

open Newton_sketch

type range = { array_id : int; offset : int; length : int }

type t = {
  arrays : Register_array.t array;
  registers_per_array : int;
  mutable free : range list; (* sorted by (array_id, offset) *)
  mutable live : range list;
}

let create ~arrays ~registers_per_array =
  if arrays <= 0 || registers_per_array <= 0 then
    invalid_arg "Register_alloc.create: sizes must be positive";
  {
    arrays = Array.init arrays (fun _ -> Register_array.create registers_per_array);
    registers_per_array;
    free =
      List.init arrays (fun i -> { array_id = i; offset = 0; length = registers_per_array });
    live = [];
  }

let total_registers t = Array.length t.arrays * t.registers_per_array

let allocated_registers t = List.fold_left (fun acc r -> acc + r.length) 0 t.live

let free_registers t = total_registers t - allocated_registers t

(** Size of the largest free block — what the next allocation can get. *)
let largest_free_block t =
  List.fold_left (fun acc r -> max acc r.length) 0 t.free

(** External fragmentation: fraction of free memory outside each
    array's largest free block (0 = every array's free memory is
    contiguous, the best an allocator can do since ranges cannot span
    arrays). *)
let fragmentation t =
  let free = free_registers t in
  if free = 0 then 0.0
  else begin
    let per_array = Array.make (Array.length t.arrays) 0 in
    List.iter
      (fun b -> per_array.(b.array_id) <- max per_array.(b.array_id) b.length)
      t.free;
    let usable = Array.fold_left ( + ) 0 per_array in
    1.0 -. (float_of_int usable /. float_of_int free)
  end

let range_compare a b = compare (a.array_id, a.offset) (b.array_id, b.offset)

(** First-fit allocation of [registers] contiguous registers.  Returns
    [None] when no free block is large enough (the controller then
    spills the query to another switch or rejects it). *)
let alloc t ~registers =
  if registers <= 0 then invalid_arg "Register_alloc.alloc: need a positive size";
  let rec go acc = function
    | [] -> None
    | blk :: rest when blk.length >= registers ->
        let taken = { blk with length = registers } in
        let remainder =
          if blk.length = registers then []
          else [ { blk with offset = blk.offset + registers; length = blk.length - registers } ]
        in
        t.free <- List.rev_append acc (remainder @ rest);
        t.live <- taken :: t.live;
        Some taken
    | blk :: rest -> go (blk :: acc) rest
  in
  go [] t.free

(* Merge adjacent free blocks within the same array. *)
let coalesce blocks =
  let sorted = List.sort range_compare blocks in
  let rec go = function
    | a :: b :: rest when a.array_id = b.array_id && a.offset + a.length = b.offset ->
        go ({ a with length = a.length + b.length } :: rest)
    | a :: rest -> a :: go rest
    | [] -> []
  in
  go sorted

exception Not_allocated

(** Return a range to the pool (and zero its registers, as a window
    reset would).  Raises {!Not_allocated} for an unknown range. *)
let free t range =
  if not (List.mem range t.live) then raise Not_allocated;
  t.live <- List.filter (fun r -> r <> range) t.live;
  let arr = t.arrays.(range.array_id) in
  for i = range.offset to range.offset + range.length - 1 do
    Register_array.set arr i 0
  done;
  t.free <- coalesce (range :: t.free)

(** A view: the register window a query's S module indexes through.
    Indices wrap modulo the view length, exactly like H's configurable
    output range. *)
module View = struct
  type alloc = t

  type t = { parent : Register_array.t; range : range }

  let length v = v.range.length

  let idx v i = v.range.offset + (i mod v.range.length)

  let exec v alu i = Register_array.exec v.parent alu (idx v i)

  let get v i = Register_array.get v.parent (idx v i)

  let clear v =
    for i = v.range.offset to v.range.offset + v.range.length - 1 do
      Register_array.set v.parent i 0
    done

  let occupancy v =
    let n = ref 0 in
    for i = v.range.offset to v.range.offset + v.range.length - 1 do
      if Register_array.get v.parent i <> 0 then incr n
    done;
    !n
end

let view t range = { View.parent = t.arrays.(range.array_id); range }

(** Allocate-and-view in one step. *)
let alloc_view t ~registers =
  Option.map (view t) (alloc t ~registers)

(** How many queries of [per_query] register demand fit (capacity
    planning for Fig. 16-style concurrency). *)
let capacity t ~per_query =
  if per_query <= 0 then invalid_arg "Register_alloc.capacity";
  List.fold_left (fun acc blk -> acc + (blk.length / per_query)) 0 t.free
