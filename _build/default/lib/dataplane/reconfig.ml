(** Reconfiguration timing model.

    Two reconfiguration regimes exist on programmable switches (§2.1):

    - {b Runtime rule updates} (Newton): installing or removing a table
      rule through the switch driver takes on the order of a millisecond
      and does not disturb forwarding.  Fig. 11 measures whole-query
      install/remove at 5–20 ms (a query is ~5–25 rules).

    - {b Full program reload} (Sonata/Marple): loading a new P4 program
      reboots the pipeline.  The switch stops forwarding for a fixed
      drain/reload period plus the time to restore every forwarding-table
      entry (TCAM/SRAM rules of switch.p4).  Fig. 10 measures ~7.5 s at
      the default table sizes, growing linearly to ~30 s at 60 K entries.

    Latencies are sampled from calibrated distributions so repeated runs
    show realistic jitter; all sampling is seeded. *)

(** Fixed driver round-trip cost per batched install operation,
    seconds. *)
let install_base = 1.8e-3

(** Mean per-rule install latency within a batch, seconds. *)
let rule_install_mean = 0.32e-3

(** Fixed driver round-trip cost per batched removal, seconds. *)
let remove_base = 1.2e-3

(** Mean per-rule removal latency, seconds (removal skips action-data
    writes, so it is cheaper). *)
let rule_remove_mean = 0.22e-3

(** Fixed pipeline drain + program load + port bring-up time for a full
    reload, seconds. *)
let reload_fixed = 5.0

(** Per-forwarding-entry restore cost after a reload, seconds. *)
let reload_per_entry = 0.42e-3

(* Latency jitter: exponential around 25% of the mean, matching the
   long-ish tail of driver RPC latencies. *)
let jittered rng mean =
  (mean *. 0.85) +. Newton_util.Prng.exponential rng (1.0 /. (mean *. 0.15))

(** Latency of installing [n] rules (one batched driver call; per-rule
    writes are serialised within it). *)
let install_latency rng ~rules =
  let acc = ref (jittered rng install_base) in
  for _ = 1 to rules do
    acc := !acc +. jittered rng rule_install_mean
  done;
  !acc

(** Latency of removing [n] rules. *)
let remove_latency rng ~rules =
  let acc = ref (jittered rng remove_base) in
  for _ = 1 to rules do
    acc := !acc +. jittered rng rule_remove_mean
  done;
  !acc

(** Forwarding outage caused by a full P4 program reload with
    [fwd_entries] forwarding rules to restore. Newton never pays this;
    Sonata pays it on every query create/update/remove. *)
let reload_outage ?rng ~fwd_entries () =
  let jitter =
    match rng with
    | None -> 0.0
    | Some rng -> Newton_util.Prng.float_range rng 0.4 -. 0.2
  in
  reload_fixed +. (reload_per_entry *. float_of_int fwd_entries) +. jitter
