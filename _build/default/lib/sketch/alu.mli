(** Stateful ALU operations executable over a register — the
    transactional menu of the state bank (sufficient for Bloom filters,
    Count-Min sketches, and running maxima). *)

type t =
  | Add of int   (** register <- register + k; returns the new value *)
  | Or of int    (** register <- register lor k; returns the {e previous} value *)
  | Max of int   (** register <- max register k; returns the new value *)
  | Read         (** returns the register unchanged *)
  | Write of int (** register <- k; returns the previous value *)

(** Perform the read-modify-write at an index; returns the ALU result. *)
val exec : t -> int array -> int -> int

val to_string : t -> string
val pp : Format.formatter -> t -> unit
