lib/sketch/bloom.mli:
