lib/sketch/count_min.ml: Alu Array Float Hash Register_array
