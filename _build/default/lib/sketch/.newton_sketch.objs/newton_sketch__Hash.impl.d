lib/sketch/hash.ml: Array Int64
