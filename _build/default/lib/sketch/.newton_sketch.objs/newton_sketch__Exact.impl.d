lib/sketch/exact.ml: Hashtbl Option
