lib/sketch/count_min.mli:
