lib/sketch/hash.mli:
