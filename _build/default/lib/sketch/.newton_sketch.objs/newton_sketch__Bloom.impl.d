lib/sketch/bloom.ml: Alu Array Hash Register_array
