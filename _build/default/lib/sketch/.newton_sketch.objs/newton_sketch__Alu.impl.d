lib/sketch/alu.ml: Array Format Printf
