lib/sketch/register_array.ml: Alu Array Printf
