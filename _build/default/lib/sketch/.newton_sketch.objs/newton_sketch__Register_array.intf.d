lib/sketch/register_array.mli: Alu
