lib/sketch/alu.mli: Format
