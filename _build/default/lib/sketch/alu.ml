(** Stateful ALU operations executable over a register.

    Newton's state bank (S) supports a small fixed menu of transactional
    ALUs, sufficient for Bloom filters ([Or]) and Count-Min sketches
    ([Add]); [Max] covers running maxima (e.g. per-flow packet size) and
    [Read] makes S a pass-through for stateless primitives. *)

type t =
  | Add of int  (** register <- register + k; returns new value *)
  | Or of int   (** register <- register lor k; returns {e previous} value *)
  | Max of int  (** register <- max register k; returns new value *)
  | Read        (** returns register unchanged *)
  | Write of int (** register <- k; returns previous value *)

(** [exec alu regs idx] performs the transactional read-modify-write and
    returns the ALU's result value. *)
let exec alu (regs : int array) idx =
  match alu with
  | Add k ->
      let v = regs.(idx) + k in
      regs.(idx) <- v;
      v
  | Or k ->
      let prev = regs.(idx) in
      regs.(idx) <- prev lor k;
      prev
  | Max k ->
      let v = max regs.(idx) k in
      regs.(idx) <- v;
      v
  | Read -> regs.(idx)
  | Write k ->
      let prev = regs.(idx) in
      regs.(idx) <- k;
      prev

let to_string = function
  | Add k -> Printf.sprintf "add(%d)" k
  | Or k -> Printf.sprintf "or(0x%x)" k
  | Max k -> Printf.sprintf "max(%d)" k
  | Read -> "read"
  | Write k -> Printf.sprintf "write(%d)" k

let pp fmt t = Format.pp_print_string fmt (to_string t)
