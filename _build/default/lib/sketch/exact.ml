(** Exact (oracle) counting structures for ground truth.

    The accuracy experiments (Fig. 14) compare sketch answers against the
    true per-key values; these hashtable-backed oracles provide them.  They
    are also what the software analyzer uses for primitives deferred to
    CPU. *)

module Key = struct
  type t = int array

  let equal = ( = )
  let hash (k : t) = Hashtbl.hash k
end

module Tbl = Hashtbl.Make (Key)

(** Exact counter: key vector -> running sum. *)
module Counter = struct
  type t = int Tbl.t

  let create () : t = Tbl.create 1024

  let add t keys k =
    let cur = Option.value (Tbl.find_opt t keys) ~default:0 in
    let v = cur + k in
    Tbl.replace t keys v;
    v

  (** [merge_max t keys v] keeps the running maximum instead of a sum. *)
  let merge_max t keys v =
    let cur = Option.value (Tbl.find_opt t keys) ~default:0 in
    let m = max cur v in
    Tbl.replace t keys m;
    m

  let count t keys = Option.value (Tbl.find_opt t keys) ~default:0
  let cardinality t = Tbl.length t
  let clear t = Tbl.reset t

  let fold f t init = Tbl.fold f t init

  (** Keys whose count strictly exceeds [threshold]. *)
  let over_threshold t threshold =
    Tbl.fold (fun k v acc -> if v > threshold then (k, v) :: acc else acc) t []
end

(** Exact distinct-set: key vector membership. *)
module Distinct = struct
  type t = unit Tbl.t

  let create () : t = Tbl.create 1024

  (** Returns whether the key was already present, then inserts. *)
  let test_and_set t keys =
    if Tbl.mem t keys then true
    else begin
      Tbl.replace t keys ();
      false
    end

  let mem t keys = Tbl.mem t keys
  let cardinality t = Tbl.length t
  let clear t = Tbl.reset t
end
