(** Per-switch query execution engine.

    Holds installed query instances — whole chains for sole-switch
    execution or stage-range slices for CQE — with their register
    arrays, a ternary [newton_init] classifier table, per-module-cell
    rule capacity, per-instance 100 ms windows, and report
    deduplication. *)

open Newton_packet
open Newton_query
open Newton_compiler

type array_key = int * int * int (** branch, prim, suite *)

type instance = {
  uid : int;
  compiled : Compose.t;
  stage_lo : int;
  stage_hi : int;
  slots : Ir.slot list array; (** hosted slots per branch, chain order *)
  arrays : (array_key, Newton_sketch.Register_array.t) Hashtbl.t;
  reported : (int * int array, unit) Hashtbl.t;
  mutable rules : int;
  mutable window_index : int;
}

type t = {
  switch_id : int;
  mutable report_budget : int option;
  mutable budget_window : int;
  mutable window_reports : int;
  mutable dropped_reports : int;
  mutable instances : instance list;
  init_table : (int * int) Newton_dataplane.Table.t;
  cell_rules : (int * Newton_dataplane.Module_cost.kind * int, int) Hashtbl.t;
  mutable reports : Report.t list;
  mutable report_count : int;
  mutable packets_seen : int;
  mutable next_uid : int;
}

(** Raised when a module table cannot accept another query's rule. *)
exception Rules_exhausted of { stage : int; kind : string }

val create : switch_id:int -> t

val switch_id : t -> int

(** Cap the mirror sessions: at most [n] report exports per window
    ([None] = unlimited, the default).  Overflow reports are dropped on
    the wire. *)
val set_report_budget : t -> int option -> unit

(** Reports dropped because the mirror budget was exhausted. *)
val dropped_reports : t -> int
val instances : t -> instance list

(** Reports in emission order. *)
val reports : t -> Report.t list

val report_count : t -> int
val packets_seen : t -> int

(** Install a slice [stage_lo, stage_hi] of a compiled query (defaults:
    the whole chain).  Non-first slices re-install shadow K/H modules
    (keys and per-suite hashes do not cross switches).  CQE slices of
    one deployment pass the same [uid].  Returns (uid, table entries).
    @raise Rules_exhausted when a module cell is out of capacity; the
    check is atomic (a rejected install leaves no residue). *)
val install :
  t -> ?uid:int -> ?stage_lo:int -> ?stage_hi:int -> Compose.t -> int * int

(** Remove an instance, releasing its rules and classifier entries;
    returns the freed entry count. *)
val remove : t -> int -> int option

val find_instance : t -> int -> instance option

(** Monitoring table entries currently installed. *)
val total_rules : t -> int

(** Roll an instance's window if [now] crossed a boundary (resets its
    sketch state and report dedup). *)
val roll_instance_window : instance -> float -> unit

(** Roll every instance (used by the path executor / controller). *)
val maybe_roll_window : t -> float -> float -> unit

(** Run a packet through one instance, resuming from [ctx] (fresh, or
    SP-restored under CQE); returns the post-slice context. *)
val process_instance : t -> instance -> ?ctx:Ctx.t -> Packet.t -> Ctx.t

(** Device-level processing: classify through [newton_init], roll
    windows, run every matching instance. *)
val process_packet : t -> Packet.t -> unit

(** Return and clear the collected reports. *)
val drain_reports : t -> Report.t list

(** Per-instance runtime statistics for operator dashboards. *)
type instance_stats = {
  st_uid : int;
  st_query : string;
  st_rules : int;
  st_stage_lo : int;
  st_stage_hi : int;
  st_arrays : int;
  st_registers : int;
  st_occupancy : int;
  st_window : int;
  st_reported_keys : int;
}

val instance_stats : instance -> instance_stats
val stats : t -> instance_stats list
val stats_to_string : instance_stats -> string
