(** The software analyzer.

    Collects data-plane reports, deduplicates them network-wide (with
    CQE a query reports once per path; with sole-switch execution every
    hop reports, and the analyzer sees the duplication as overhead), and
    finishes the query parts that stay on CPU — e.g. the Slowloris
    bytes-per-connection ratio test of Q8, which the data plane exports
    as a [Pair].

    Accuracy scoring against the exact reference evaluator lives here
    too, since the analyzer is where ground truth is compared in the
    paper's Fig. 14. *)

open Newton_query

type t = {
  mutable received : int;       (** monitoring messages arriving at CPU *)
  mutable reports : Report.t list; (* reverse order *)
  seen : (int * int * int array, unit) Hashtbl.t;
}

let create () = { received = 0; reports = []; seen = Hashtbl.create 256 }

let received t = t.received

(** Ingest a batch of data-plane reports (one message each). *)
let ingest t batch =
  List.iter
    (fun (r : Report.t) ->
      t.received <- t.received + 1;
      let key = (r.Report.query_id, r.Report.window, r.Report.keys) in
      if not (Hashtbl.mem t.seen key) then begin
        Hashtbl.add t.seen key ();
        t.reports <- r :: t.reports
      end)
    batch

(** Deduplicated reports, applying CPU-side post-filters: for Pair
    queries (Q8), keep only reports whose bytes/connection ratio is
    below [pair_ratio] — many connections, few bytes each. *)
let results ?(pair_ratio = 200.0) t =
  List.rev t.reports
  |> List.filter (fun (r : Report.t) ->
         match r.Report.value2 with
         | None -> true
         | Some bytes ->
             r.Report.value > 0
             && float_of_int bytes /. float_of_int r.Report.value < pair_ratio)

(** Render reports as CSV (header + one line per report), for offline
    analysis pipelines. *)
let to_csv reports =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "query_id,window,keys,value,value2\n";
  List.iter
    (fun (r : Report.t) ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%s,%d,%s\n" r.Report.query_id r.Report.window
           (String.concat ";"
              (Array.to_list (Array.map string_of_int r.Report.keys)))
           r.Report.value
           (match r.Report.value2 with Some v -> string_of_int v | None -> "")))
    reports;
  Buffer.contents buf

(* ---------------- accuracy scoring ---------------- *)

type accuracy = {
  true_positives : int;
  false_positives : int;
  false_negatives : int;
  recall : float;    (** the paper's "accuracy" *)
  precision : float;
  fpr : float;       (** false positives / reported *)
}

(** Compare detected key-sets against ground truth (both as report
    lists); identity is (query, window, keys). *)
let score ~truth ~detected =
  let key (r : Report.t) = (r.Report.query_id, r.Report.window, r.Report.keys) in
  let truth_set = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace truth_set (key r) ()) truth;
  let det_set = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace det_set (key r) ()) detected;
  let tp = ref 0 and fp = ref 0 in
  Hashtbl.iter
    (fun k () -> if Hashtbl.mem truth_set k then incr tp else incr fp)
    det_set;
  let fn = Hashtbl.length truth_set - !tp in
  let denom_t = Hashtbl.length truth_set in
  let denom_d = Hashtbl.length det_set in
  {
    true_positives = !tp;
    false_positives = !fp;
    false_negatives = fn;
    recall = (if denom_t = 0 then 1.0 else float_of_int !tp /. float_of_int denom_t);
    precision = (if denom_d = 0 then 1.0 else float_of_int !tp /. float_of_int denom_d);
    fpr = (if denom_d = 0 then 0.0 else float_of_int !fp /. float_of_int denom_d);
  }
