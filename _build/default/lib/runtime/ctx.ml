(** Per-packet, per-query execution context.

    Mirrors the PHV metadata of the compact module layout (§4.2): two
    metadata sets — operation keys, hash result, state result — plus the
    global result that R modules merge into.  [g2] is the second
    accumulator combine read-backs use within a single R rule.

    Cross-switch execution serialises the context into the 12-byte SP
    header ({!Newton_packet.Sp_header}) and restores it at the next
    Newton-enabled switch; operation keys are not carried — the next
    switch's K modules re-select them from the packet itself. *)

open Newton_packet

type t = {
  mutable op_keys : int array array; (* [2] metadata sets *)
  mutable hash : int array;          (* [2] *)
  mutable state : int array;         (* [2] *)
  mutable g1 : int;
  mutable g2 : int;
  mutable stopped : bool;
}

let create () =
  {
    op_keys = [| [||]; [||] |];
    hash = [| 0; 0 |];
    state = [| 0; 0 |];
    g1 = 0;
    g2 = 0;
    stopped = false;
  }

let reset t =
  t.op_keys <- [| [||]; [||] |];
  t.hash <- [| 0; 0 |];
  t.state <- [| 0; 0 |];
  t.g1 <- 0;
  t.g2 <- 0;
  t.stopped <- false

(** Snapshot the context into an SP header (the [newton_fin] action). *)
let to_sp t =
  Sp_header.make ~hash1:t.hash.(0) ~state1:t.state.(0) ~hash2:t.hash.(1)
    ~state2:t.state.(1) ~global:t.g1

(** Restore result sets from a decoded SP header (the parser path). *)
let of_sp sp =
  let t = create () in
  t.hash.(0) <- sp.Sp_header.hash1;
  t.state.(0) <- sp.Sp_header.state1;
  t.hash.(1) <- sp.Sp_header.hash2;
  t.state.(1) <- sp.Sp_header.state2;
  t.g1 <- sp.Sp_header.global;
  t
