(** The software analyzer: collects data-plane reports, deduplicates
    them network-wide, applies CPU-side post-filters (e.g. Q8's
    bytes-per-connection ratio), and scores detections against ground
    truth (Fig. 14). *)

open Newton_query

type t

val create : unit -> t

(** Monitoring messages received so far. *)
val received : t -> int

(** Ingest a batch of data-plane reports (one message each). *)
val ingest : t -> Report.t list -> unit

(** Deduplicated results; [Pair] reports are kept only when
    bytes/connections falls below [pair_ratio]. *)
val results : ?pair_ratio:float -> t -> Report.t list

(** Reports as CSV (header + one line per report; keys joined with
    ';'). *)
val to_csv : Report.t list -> string

type accuracy = {
  true_positives : int;
  false_positives : int;
  false_negatives : int;
  recall : float;    (** the paper's "accuracy" axis *)
  precision : float;
  fpr : float;       (** false positives / reported *)
}

(** Compare detections against ground truth; identity is
    (query, window, keys).  Empty-vs-empty scores 1.0 recall and
    precision. *)
val score : truth:Report.t list -> detected:Report.t list -> accuracy
