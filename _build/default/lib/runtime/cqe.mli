(** Cross-switch query execution (§5.1): run a packet through the
    engines along its forwarding path, threading the execution context
    through the 12-byte SP header between consecutive switches. *)

open Newton_packet

type stats = {
  mutable sp_bytes : int;   (** SP header bytes added on the wire *)
  mutable packets : int;
  mutable wire_bytes : int; (** raw packet bytes, for the ratio *)
}

val create_stats : unit -> stats

(** SP bytes / wire bytes. *)
val overhead_ratio : stats -> float

(** Process a packet along [engines] (path order); instances are
    matched across switches by their controller-assigned uid. *)
val process_path : ?stats:stats -> Engine.t list -> Packet.t -> unit
