lib/runtime/cqe.ml: Ctx Engine Field Hashtbl List Newton_compiler Newton_packet Newton_query Packet Sp_header
