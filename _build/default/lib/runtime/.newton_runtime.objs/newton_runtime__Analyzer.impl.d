lib/runtime/analyzer.ml: Array Buffer Hashtbl List Newton_query Printf Report String
