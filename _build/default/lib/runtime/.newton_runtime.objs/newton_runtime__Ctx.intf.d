lib/runtime/ctx.mli: Newton_packet Sp_header
