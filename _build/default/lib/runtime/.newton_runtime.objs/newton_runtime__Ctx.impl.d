lib/runtime/ctx.ml: Array Newton_packet Sp_header
