lib/runtime/engine.mli: Compose Ctx Hashtbl Ir Newton_compiler Newton_dataplane Newton_packet Newton_query Newton_sketch Packet Report
