lib/runtime/engine.ml: Alu Array Ast Compose Ctx Field Hash Hashtbl Ir List Newton_compiler Newton_dataplane Newton_packet Newton_query Newton_sketch Option Packet Printf Register_array Report
