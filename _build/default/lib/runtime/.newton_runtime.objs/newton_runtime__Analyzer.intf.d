lib/runtime/analyzer.mli: Newton_query Report
