lib/runtime/cqe.mli: Engine Newton_packet Packet
