(** Per-packet, per-query execution context: the PHV metadata of the
    compact module layout — two metadata sets (operation keys, hash
    result, state result) plus the global-result accumulators — bridged
    through the 12-byte SP header between switches. *)

open Newton_packet

type t = {
  mutable op_keys : int array array; (** per metadata set *)
  mutable hash : int array;
  mutable state : int array;
  mutable g1 : int; (** the global result *)
  mutable g2 : int; (** second accumulator for combine read-backs *)
  mutable stopped : bool;
}

val create : unit -> t
val reset : t -> unit

(** Snapshot into an SP header (the [newton_fin] action); [g2] and the
    operation keys do not cross switches. *)
val to_sp : t -> Sp_header.t

(** Restore result sets from a decoded SP header (the parser path). *)
val of_sp : Sp_header.t -> t
