(** Concurrent-query scheduling — the open question of §7.

    The paper leaves "scheduling concurrent queries to optimally utilize
    data plane resources" as future work; this module provides a
    practical answer for one switch:

    - {b Admission}: a query is admitted only if every module cell it
      needs still has rule capacity and its minimum register demand
      fits the state-bank pool.
    - {b Register allocation}: admitted queries share the register pool
      by {e water-filling} on their declared weights (expected key
      populations): each query gets registers proportional to weight,
      clamped to its [min_registers]/[max_registers] band, with the
      remainder redistributed.  More keys → more registers → lower
      sketch error, which is exactly the accuracy lever Fig. 14
      measures.

    The scheduler is a planner: it returns per-query register budgets
    the controller then uses (recompiling each query with its assigned
    [registers] option before installation). *)

type demand = {
  query : Newton_query.Ast.t;
  weight : float;        (** expected distinct keys / load share *)
  min_registers : int;   (** below this, accuracy is unacceptable *)
  max_registers : int;   (** beyond this, more memory stops helping *)
}

(* A physical stage hosts two state banks (one per metadata set) within
   its SRAM budget; beyond ~8K registers per array the stage overflows,
   so that is the default ceiling. *)
let default_max_registers = 8192

let demand ?(weight = 1.0) ?(min_registers = 256)
    ?(max_registers = default_max_registers) query =
  if weight <= 0.0 then invalid_arg "Scheduler.demand: weight must be positive";
  if min_registers <= 0 || max_registers < min_registers then
    invalid_arg "Scheduler.demand: bad register band";
  { query; weight; min_registers; max_registers }

type assignment = {
  a_query : Newton_query.Ast.t;
  registers : int; (** per state-bank array for this query *)
}

type plan = {
  admitted : assignment list;
  rejected : Newton_query.Ast.t list; (** didn't fit *)
  pool_used : int;
  pool_total : int;
}

(* Rule-capacity admission: per (stage, kind, set) cell usage of already
   admitted queries plus the candidate must stay within the module-table
   capacity. *)
let rules_fit ~rules_per_table admitted_cells compiled =
  let open Newton_compiler in
  let needed = Hashtbl.create 16 in
  Array.iter
    (List.iter (fun s ->
         let cell = (s.Ir.stage, s.Ir.kind, s.Ir.meta) in
         Hashtbl.replace needed cell
           (1 + Option.value (Hashtbl.find_opt needed cell) ~default:0)))
    compiled.Compose.branches;
  Hashtbl.fold
    (fun cell n ok ->
      ok
      && Option.value (Hashtbl.find_opt admitted_cells cell) ~default:0 + n
         <= rules_per_table)
    needed true

let commit_rules admitted_cells compiled =
  let open Newton_compiler in
  Array.iter
    (List.iter (fun s ->
         let cell = (s.Ir.stage, s.Ir.kind, s.Ir.meta) in
         Hashtbl.replace admitted_cells cell
           (1 + Option.value (Hashtbl.find_opt admitted_cells cell) ~default:0)))
    compiled.Compose.branches

(* Register arrays a query's compilation will instantiate (S slots that
   own arrays), at one register each — used to convert a per-array
   budget into pool consumption. *)
let arrays_needed compiled =
  let open Newton_compiler in
  Array.fold_left
    (fun acc slots ->
      acc
      + List.length
          (List.filter
             (fun s ->
               match s.Ir.cfg with
               | Ir.S_cfg { op = Ir.S_bf | Ir.S_cm _ | Ir.S_max _; _ } -> true
               | _ -> false)
             slots))
    0 compiled.Compose.branches

(* Water-filling: give each demand registers proportional to weight,
   clamp into its band, redistribute leftovers until stable. *)
let waterfill ~pool demands =
  let n = List.length demands in
  if n = 0 then []
  else begin
    let alloc = Array.make n 0 in
    let fixed = Array.make n false in
    let remaining_pool = ref pool in
    let remaining = ref (List.mapi (fun i d -> (i, d)) demands) in
    let continue = ref true in
    while !continue && !remaining <> [] do
      continue := false;
      let total_w = List.fold_left (fun a (_, d) -> a +. d.weight) 0.0 !remaining in
      let share d = float_of_int !remaining_pool *. d.weight /. total_w in
      (* Clamp anyone whose proportional share escapes their band. *)
      let clamped, free =
        List.partition
          (fun (_, d) ->
            let s = share d in
            s < float_of_int d.min_registers || s > float_of_int d.max_registers)
          !remaining
      in
      if clamped <> [] then begin
        List.iter
          (fun (i, d) ->
            let s = share d in
            let v =
              if s < float_of_int d.min_registers then d.min_registers
              else d.max_registers
            in
            alloc.(i) <- v;
            fixed.(i) <- true;
            remaining_pool := !remaining_pool - v)
          clamped;
        remaining := free;
        continue := true
      end
      else begin
        List.iter (fun (i, d) -> alloc.(i) <- int_of_float (share d)) free;
        remaining := []
      end
    done;
    Array.to_list alloc
  end

(** Plan admission and register allocation for one switch.

    [register_pool] is the total state-bank registers the switch grants
    Newton; [rules_per_table] the module-table capacity; [compile]
    lets the caller inject compilation options (depths etc.). *)
let plan ?(rules_per_table = Newton_dataplane.Module_cost.rules_per_module)
    ~register_pool
    ?(compile = fun q -> Newton_compiler.Compose.compile q)
    demands =
  (* Greedy admission by descending weight: heavier queries (more keys,
     more operator value) get in first. *)
  let sorted =
    List.sort (fun a b -> compare b.weight a.weight) demands
  in
  let admitted_cells = Hashtbl.create 32 in
  let pool_left = ref register_pool in
  let admitted = ref [] and rejected = ref [] in
  List.iter
    (fun d ->
      let compiled = compile d.query in
      let arrays = max 1 (arrays_needed compiled) in
      let min_regs = arrays * d.min_registers in
      if rules_fit ~rules_per_table admitted_cells compiled && min_regs <= !pool_left
      then begin
        commit_rules admitted_cells compiled;
        pool_left := !pool_left - min_regs;
        admitted := (d, arrays) :: !admitted
      end
      else rejected := d.query :: !rejected)
    sorted;
  let admitted = List.rev !admitted in
  (* Second phase: water-fill the whole pool (minimums are guaranteed by
     admission) in units of per-array registers. *)
  let scaled_demands =
    List.map
      (fun (d, arrays) ->
        { d with
          min_registers = d.min_registers * arrays;
          max_registers = d.max_registers * arrays })
      admitted
  in
  let fills = waterfill ~pool:register_pool scaled_demands in
  let assignments =
    List.map2
      (fun (d, arrays) fill ->
        { a_query = d.query; registers = max d.min_registers (fill / arrays) })
      admitted fills
  in
  let used =
    List.fold_left2
      (fun acc (_, arrays) a -> acc + (arrays * a.registers))
      0 admitted assignments
  in
  {
    admitted = assignments;
    rejected = List.rev !rejected;
    pool_used = min used register_pool;
    pool_total = register_pool;
  }

(** Registers assigned to a query in a plan. *)
let registers_of plan query =
  List.find_map
    (fun a -> if a.a_query == query then Some a.registers else None)
    plan.admitted
