lib/controller/scheduler.ml: Array Compose Hashtbl Ir List Newton_compiler Newton_dataplane Newton_query Option
