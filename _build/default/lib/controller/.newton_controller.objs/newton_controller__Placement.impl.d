lib/controller/placement.ml: Array Hashtbl List Newton_compiler Newton_network Topo
