lib/controller/deploy.mli: Analyzer Engine Newton_compiler Newton_dataplane Newton_network Newton_packet Newton_query Newton_runtime Placement Route Scheduler Switch Topo
