lib/controller/placement.mli: Newton_compiler Newton_network Topo
