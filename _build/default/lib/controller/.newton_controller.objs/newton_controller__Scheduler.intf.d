lib/controller/scheduler.mli: Newton_compiler Newton_query
