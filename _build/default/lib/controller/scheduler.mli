(** Concurrent-query scheduling — the open question of §7: admission
    under module-table rule capacity plus water-filling register
    allocation over per-query weights (expected key populations). *)

type demand = {
  query : Newton_query.Ast.t;
  weight : float;        (** expected distinct keys / load share *)
  min_registers : int;   (** per-array floor below which accuracy is unacceptable *)
  max_registers : int;   (** per-array ceiling beyond which memory stops helping *)
}

(** Default per-array register ceiling (two state banks must fit a
    physical stage's SRAM). *)
val default_max_registers : int

(** @raise Invalid_argument on non-positive weight or an inverted band. *)
val demand :
  ?weight:float -> ?min_registers:int -> ?max_registers:int ->
  Newton_query.Ast.t -> demand

type assignment = {
  a_query : Newton_query.Ast.t;
  registers : int; (** per state-bank array for this query *)
}

type plan = {
  admitted : assignment list;
  rejected : Newton_query.Ast.t list;
  pool_used : int;
  pool_total : int;
}

(** Plan one switch: greedy admission by descending weight under the
    per-cell rule capacity and the register pool, then water-fill the
    pool across admitted queries within their bands. *)
val plan :
  ?rules_per_table:int ->
  register_pool:int ->
  ?compile:(Newton_query.Ast.t -> Newton_compiler.Compose.t) ->
  demand list ->
  plan

(** Registers assigned to a (physically identical) query in a plan. *)
val registers_of : plan -> Newton_query.Ast.t -> int option
