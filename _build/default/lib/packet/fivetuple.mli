(** The classic 5-tuple flow key. *)

type t = {
  src_ip : int;
  dst_ip : int;
  proto : int;
  src_port : int;
  dst_port : int;
}

val make :
  src_ip:int -> dst_ip:int -> proto:int -> src_port:int -> dst_port:int -> t

val of_packet : Packet.t -> t

(** The flow in the opposite direction. *)
val reverse : t -> t

val equal : t -> t -> bool
val compare : t -> t -> int

(** Mixing hash, suitable for flow caches and ECMP. *)
val hash : t -> int

val to_string : t -> string
val pp : Format.formatter -> t -> unit

module Table : Hashtbl.S with type key = t
