lib/packet/fivetuple.mli: Format Hashtbl Packet
