lib/packet/packet.mli: Field Format
