lib/packet/packet.ml: Array Field Format List Printf String
