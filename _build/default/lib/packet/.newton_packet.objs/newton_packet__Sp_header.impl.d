lib/packet/sp_header.ml: Bytes Format Printf
