lib/packet/field.ml: Format List Printf
