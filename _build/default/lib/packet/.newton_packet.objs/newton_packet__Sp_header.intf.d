lib/packet/sp_header.mli: Format
