lib/packet/fivetuple.ml: Field Format Hashtbl Packet Printf
