(** The classic 5-tuple flow key (src/dst IP, protocol, src/dst port).

    Used by the [newton_init] classifier, the flow-level trace model, and
    the per-flow baselines (TurboFlow, FlowRadar). *)

type t = {
  src_ip : int;
  dst_ip : int;
  proto : int;
  src_port : int;
  dst_port : int;
}

let make ~src_ip ~dst_ip ~proto ~src_port ~dst_port =
  { src_ip; dst_ip; proto; src_port; dst_port }

let of_packet p =
  {
    src_ip = Packet.get p Field.Src_ip;
    dst_ip = Packet.get p Field.Dst_ip;
    proto = Packet.get p Field.Proto;
    src_port = Packet.get p Field.Src_port;
    dst_port = Packet.get p Field.Dst_port;
  }

(** The flow in the opposite direction (for matching replies). *)
let reverse t =
  {
    src_ip = t.dst_ip;
    dst_ip = t.src_ip;
    proto = t.proto;
    src_port = t.dst_port;
    dst_port = t.src_port;
  }

let equal a b =
  a.src_ip = b.src_ip && a.dst_ip = b.dst_ip && a.proto = b.proto
  && a.src_port = b.src_port && a.dst_port = b.dst_port

let compare = compare

let hash t =
  (* Mix the five components; good enough for Hashtbl bucketing. *)
  let h = ref 0x811c9dc5 in
  let mix v = h := (!h lxor v) * 0x01000193 land max_int in
  mix t.src_ip; mix t.dst_ip; mix t.proto; mix t.src_port; mix t.dst_port;
  !h

let to_string t =
  Printf.sprintf "%s:%d->%s:%d/%d"
    (Packet.ip_to_string t.src_ip) t.src_port
    (Packet.ip_to_string t.dst_ip) t.dst_port t.proto

let pp fmt t = Format.pp_print_string fmt (to_string t)

module Table = Hashtbl.Make (struct
  type nonrec t = t
  let equal = equal
  let hash = hash
end)
