(** The Result-Snapshot (SP) header for cross-switch query execution.

    CQE (§5.1 of the paper) lets one query span several switches along the
    forwarding path.  Each Newton-enabled switch snapshots its module
    execution results into a 12-byte header appended by [newton_fin]; the
    next switch's parser decodes it to initialise its result sets.  The last
    Newton switch before the destination strips the header.

    Layout (12 bytes, big-endian):
    {v
      0..1   hash result, metadata set 1   (16 bits)
      2..4   state result, metadata set 1  (24 bits)
      5..6   hash result, metadata set 2   (16 bits)
      7..9   state result, metadata set 2  (24 bits)
      10..11 global result                 (16 bits)
    v}

    The 24-bit state results are saturated on encode: sketch counters can
    exceed 2^24 only for flows far above any reporting threshold, so
    saturation never changes a report decision. *)

type t = {
  hash1 : int;   (* 16 bits *)
  state1 : int;  (* 24 bits *)
  hash2 : int;   (* 16 bits *)
  state2 : int;  (* 24 bits *)
  global : int;  (* 16 bits *)
}

let size_bytes = 12

(** Bandwidth overhead of SP for a given packet size, e.g.
    [overhead_ratio ~pkt_len:1500 = 0.008] — the paper's "<1 %". *)
let overhead_ratio ~pkt_len =
  if pkt_len <= 0 then invalid_arg "Sp_header.overhead_ratio";
  float_of_int size_bytes /. float_of_int pkt_len

let empty = { hash1 = 0; state1 = 0; hash2 = 0; state2 = 0; global = 0 }

let make ~hash1 ~state1 ~hash2 ~state2 ~global =
  { hash1; state1; hash2; state2; global }

let sat16 v = if v < 0 then 0 else if v > 0xffff then 0xffff else v
let sat24 v = if v < 0 then 0 else if v > 0xffffff then 0xffffff else v

let encode t =
  let b = Bytes.create size_bytes in
  let h1 = sat16 t.hash1 and s1 = sat24 t.state1 in
  let h2 = sat16 t.hash2 and s2 = sat24 t.state2 in
  let g = sat16 t.global in
  Bytes.set_uint8 b 0 (h1 lsr 8);
  Bytes.set_uint8 b 1 (h1 land 0xff);
  Bytes.set_uint8 b 2 (s1 lsr 16);
  Bytes.set_uint8 b 3 ((s1 lsr 8) land 0xff);
  Bytes.set_uint8 b 4 (s1 land 0xff);
  Bytes.set_uint8 b 5 (h2 lsr 8);
  Bytes.set_uint8 b 6 (h2 land 0xff);
  Bytes.set_uint8 b 7 (s2 lsr 16);
  Bytes.set_uint8 b 8 ((s2 lsr 8) land 0xff);
  Bytes.set_uint8 b 9 (s2 land 0xff);
  Bytes.set_uint8 b 10 (g lsr 8);
  Bytes.set_uint8 b 11 (g land 0xff);
  b

let decode b =
  if Bytes.length b <> size_bytes then
    invalid_arg
      (Printf.sprintf "Sp_header.decode: expected %d bytes, got %d" size_bytes
         (Bytes.length b));
  let u8 i = Bytes.get_uint8 b i in
  {
    hash1 = (u8 0 lsl 8) lor u8 1;
    state1 = (u8 2 lsl 16) lor (u8 3 lsl 8) lor u8 4;
    hash2 = (u8 5 lsl 8) lor u8 6;
    state2 = (u8 7 lsl 16) lor (u8 8 lsl 8) lor u8 9;
    global = (u8 10 lsl 8) lor u8 11;
  }

let equal a b =
  a.hash1 = b.hash1 && a.state1 = b.state1 && a.hash2 = b.hash2
  && a.state2 = b.state2 && a.global = b.global

let to_string t =
  Printf.sprintf "SP{h1=%d s1=%d h2=%d s2=%d g=%d}" t.hash1 t.state1 t.hash2
    t.state2 t.global

let pp fmt t = Format.pp_print_string fmt (to_string t)
