(** Packet representation: a timestamp plus a dense vector of global
    header-field values (see {!Field}); allocation-free access in the
    pipeline's hot loop. *)

type t

val num_fields : int

(** An all-zero packet. *)
val create : ?ts:float -> unit -> t

val get : t -> Field.t -> int

(** Set a field; the value is truncated to the field's width. *)
val set : t -> Field.t -> int -> unit

(** Arrival time, seconds since trace start. *)
val ts : t -> float

(** Same fields, different timestamp. *)
val with_ts : t -> float -> t

val copy : t -> t

(** Construct a packet from common header values; unset fields default
    to zero (length 64, TTL 64). *)
val make :
  ?ts:float -> ?src_ip:int -> ?dst_ip:int -> ?proto:int -> ?src_port:int ->
  ?dst_port:int -> ?tcp_flags:int -> ?tcp_seq:int -> ?tcp_ack:int ->
  ?pkt_len:int -> ?payload_len:int -> ?ttl:int -> ?dns_qr:int ->
  ?dns_ancount:int -> ?ingress_port:int -> unit -> t

val is_tcp : t -> bool
val is_udp : t -> bool

(** [has_flags p mask] — all bits of [mask] set in the TCP flags. *)
val has_flags : t -> int -> bool

(** TCP with flags exactly SYN. *)
val is_syn : t -> bool

val is_syn_ack : t -> bool
val is_fin : t -> bool

(** Dotted-quad rendering of an int-encoded IPv4. *)
val ip_to_string : int -> string

(** @raise Invalid_argument on a malformed dotted quad. *)
val ip_of_string : string -> int

val to_string : t -> string
val pp : Format.formatter -> t -> unit
