(** The 12-byte Result-Snapshot (SP) header for cross-switch query
    execution (§5.1): hash and state results for both metadata sets plus
    the global result, snapshotted by [newton_fin] and restored by the
    next Newton switch's parser. *)

type t = {
  hash1 : int;   (** 16 bits *)
  state1 : int;  (** 24 bits, saturated on encode *)
  hash2 : int;   (** 16 bits *)
  state2 : int;  (** 24 bits, saturated on encode *)
  global : int;  (** 16 bits *)
}

val size_bytes : int

(** Bandwidth overhead for a given packet size, e.g. 0.008 at 1500 B.
    @raise Invalid_argument if [pkt_len <= 0]. *)
val overhead_ratio : pkt_len:int -> float

val empty : t

val make : hash1:int -> state1:int -> hash2:int -> state2:int -> global:int -> t

(** Encode into exactly {!size_bytes} bytes (big-endian), saturating
    values to their field widths. *)
val encode : t -> bytes

(** @raise Invalid_argument when the buffer is not {!size_bytes} long. *)
val decode : bytes -> t

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
