(** Sonata compilation cost model: logical P4 tables and estimated
    stages of the paper's main comparison system, for the Fig. 15/16
    resource comparison.  A cost estimate, not a runtime (Sonata's
    query semantics are shared with the Newton engine; see
    {!Newton_baselines.Sonata} for the reload behaviour). *)

open Newton_query

(** Logical tables in Sonata's generated P4 for a query. *)
val logical_tables : Ast.t -> int

(** Estimated pipeline stages (per Jose et al. [55]). *)
val estimated_stages : Ast.t -> int

(** Sonata chains concurrent queries sequentially: strictly additive. *)
val concurrent_tables : Ast.t -> int -> int

val concurrent_stages : Ast.t -> int -> int
