(** Marple compilation cost model: pipeline stages of the
    language-directed hardware design the paper contrasts in §2.2.
    Like {!Sonata_cost}, an estimate used to situate Newton's per-query
    stage budget. *)

open Newton_query

(** Pipeline stages Marple's compiler needs for a query. *)
val pipeline_stages : Ast.t -> int

(** Fraction of keys spilling to the off-chip backing store for a
    groupby, given on-chip slots and key population. *)
val backing_store_spill : on_chip_slots:int -> keys:int -> float

(** Marple, like Sonata, reloads the pipeline on every query change. *)
val update_requires_reload : bool
