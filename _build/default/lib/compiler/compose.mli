(** Module rule composition — Algorithm 1 (§4.3): Opt.1 (front filters
    into [newton_init]), Opt.2 (unused/redundant module removal), Opt.3
    (per-suite metadata-set alternation), and hazard-aware stage
    assignment.  Parallel branches multiplex stage cells (§6.4). *)

open Newton_query
open Ir

type stats = {
  primitives : int;
  modules_naive : int;   (** every decomposed slot, one stage each *)
  modules : int;         (** active slots after Opt.1/2/3 *)
  modules_shared : int;  (** distinct (stage, kind, set) cells after multiplexing *)
  stages_naive : int;
  stages : int;
  rules : int;           (** table entries: active slots + init entries *)
}

type t = {
  query : Ast.t;
  options : Decompose.options;
  branches : slot list array;     (** active slots, chain order *)
  init_entries : init_entry array;
  stats : stats;
}

(** Run Algorithm 1 over a decomposition (mutates and consumes it). *)
val compose : Decompose.t -> t

(** Decompose then compose. *)
val compile : ?options:Decompose.options -> Ast.t -> t

(** Amortised resource vector of the compiled query (Table 3 shares). *)
val resource_usage : t -> Newton_dataplane.Resource.t

val to_string : t -> string
