lib/compiler/marple_cost.ml: Ast List Newton_query
