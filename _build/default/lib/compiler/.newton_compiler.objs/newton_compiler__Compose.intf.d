lib/compiler/compose.mli: Ast Decompose Ir Newton_dataplane Newton_query
