lib/compiler/decompose.ml: Array Ast Ir List Module_cost Newton_dataplane Newton_query Printf
