lib/compiler/sonata_cost.mli: Ast Newton_query
