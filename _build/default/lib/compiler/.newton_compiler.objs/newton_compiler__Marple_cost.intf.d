lib/compiler/marple_cost.mli: Ast Newton_query
