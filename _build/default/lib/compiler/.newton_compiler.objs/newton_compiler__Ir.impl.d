lib/compiler/ir.ml: Field Newton_dataplane Newton_packet Newton_query Printf
