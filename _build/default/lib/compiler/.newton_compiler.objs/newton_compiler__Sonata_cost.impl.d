lib/compiler/sonata_cost.ml: Ast List Newton_query
