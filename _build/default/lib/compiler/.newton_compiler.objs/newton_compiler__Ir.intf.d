lib/compiler/ir.mli: Field Newton_dataplane Newton_packet Newton_query
