lib/compiler/compose.ml: Array Ast Decompose Hashtbl Ir List Module_cost Newton_dataplane Newton_query Option Printf Resource
