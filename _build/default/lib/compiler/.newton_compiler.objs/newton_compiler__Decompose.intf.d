lib/compiler/decompose.mli: Ast Ir Newton_query
