(** Sonata compilation cost model, for the Fig. 15 comparison.

    Sonata compiles each query into a dedicated P4 program; the paper
    reports its logical tables and estimated stages (per Jose et al.,
    "Compiling packet programs to reconfigurable switches" [55]).  We
    model Sonata's published compilation strategy: each stateless
    primitive becomes a match + action table pair, each stateful primitive
    needs hash/array/threshold logic, and stages follow the sequential
    dependency chain with limited same-stage packing. *)

open Newton_query

(* Logical tables per primitive in Sonata's generated P4. *)
let tables_of_primitive = function
  | Ast.Filter _ -> 2 (* match table + action table *)
  | Ast.Map _ -> 2    (* projection + metadata write *)
  | Ast.Distinct _ -> 5 (* hash, bitmap array, test, update, gate *)
  | Ast.Reduce _ -> 5   (* hash, counter array, update, read, threshold *)

let logical_tables (q : Ast.t) =
  let per_branch prims =
    List.fold_left (fun acc p -> acc + tables_of_primitive p) 0 prims
  in
  let branches = List.fold_left (fun acc b -> acc + per_branch b) 0 q.Ast.branches in
  (* Multi-branch queries pay a join/zip stage on the data plane. *)
  match q.Ast.combine with None -> branches | Some _ -> branches + 3

(** Estimated stages per [55]: dependent tables serialise; roughly 4/5 of
    tables need their own stage once same-stage packing is accounted. *)
let estimated_stages (q : Ast.t) =
  let t = logical_tables q in
  max 1 (int_of_float (ceil (float_of_int t *. 0.8)))

(** Sonata chains concurrent queries sequentially (Fig. 16): resource use
    is strictly additive. *)
let concurrent_tables q n = logical_tables q * n
let concurrent_stages q n = estimated_stages q * n
