(** Marple compilation cost model (Narayana et al., SIGCOMM'17).

    Marple is the other static query system the paper contrasts (§2.2):
    queries compile into a language-directed hardware design, so like
    Sonata every query change means a new pipeline image.  Its published
    compiler maps each stateful fold to a key-value store stage pair and
    each stateless operator to one stage; [groupby] aggregations also
    need the off-chip backing-store machinery.

    Used alongside {!Sonata_cost} to situate Newton's per-query stage
    budget; like that module it is a cost {e estimate}, not a runtime. *)

open Newton_query

(* Pipeline stages per primitive in Marple's compilation. *)
let stages_of_primitive = function
  | Ast.Filter _ -> 1          (* predicate stage *)
  | Ast.Map _ -> 1             (* transformation stage *)
  | Ast.Distinct _ -> 3        (* hash + key-value store + evict logic *)
  | Ast.Reduce _ -> 3          (* hash + fold store + merge logic *)

let pipeline_stages (q : Ast.t) =
  let per_branch prims =
    List.fold_left (fun acc p -> acc + stages_of_primitive p) 0 prims
  in
  let branches = List.fold_left (fun acc b -> acc + per_branch b) 0 q.Ast.branches in
  match q.Ast.combine with None -> branches | Some _ -> branches + 2 (* zip *)

(** Fraction of keys spilling to the off-chip backing store for a
    [groupby] under Marple's LRU eviction model, given on-chip slots per
    key population (their paper's ~4 % miss rate at 64K keys heuristic,
    scaled linearly below saturation). *)
let backing_store_spill ~on_chip_slots ~keys =
  if keys <= 0 then 0.0
  else if on_chip_slots >= keys then 0.0
  else
    min 1.0 (0.04 *. (float_of_int keys /. float_of_int on_chip_slots))

(** Like Sonata, every query operation reloads the pipeline: the outage
    model is shared with {!Newton_dataplane.Reconfig}. *)
let update_requires_reload = true
