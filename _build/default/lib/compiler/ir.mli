(** Compiler intermediate representation: module slots.

    Decomposition turns every query primitive into a suite of up to four
    module slots (K, H, S, R); Algorithm 1 mutates the slots' liveness,
    metadata-set and stage annotations; the runtime and the P4 rule
    generator interpret the configurations. *)

open Newton_packet

type value_src =
  | Const of int
  | Field_val of Field.t

(** State-bank rule configuration. *)
type s_op =
  | S_pass                 (** state result := hash result *)
  | S_bf                   (** Bloom bit: result := previous; reg |= 1 *)
  | S_cm of value_src      (** Count-Min row: reg += v; result := new *)
  | S_max of value_src     (** max row: reg := max reg v *)
  | S_read of array_ref    (** read another suite's array at own hash *)

and array_ref = { ar_branch : int; ar_prim : int; ar_suite : int }

(** Accumulators an R merge can target (the extended global result). *)
type acc = G1 | G2

type merge_op = M_set | M_min | M_max | M_add | M_sub

type guard_target = On_state | On_g1 | On_g2

(** Result-process rule: optional merge into an accumulator, optional
    combine (g1 := op(g1, g2)), optional guard (stop on mismatch),
    optional report. *)
type r_cfg = {
  merge : (acc * merge_op) option;
  guard : (guard_target * Newton_query.Ast.cmp_op * int) option;
  report : bool;
  combine : merge_op option;
}

val r_nop : r_cfg

type m_cfg =
  | K_cfg of Newton_query.Ast.key list
  | H_cfg of { mode : [ `Hash of int | `Direct ]; range : int }
  | S_cfg of { op : s_op; registers : int }
  | R_cfg of r_cfg

type slot = {
  kind : Newton_dataplane.Module_cost.kind;
  branch : int;
  prim : int;
  suite : int;
  cfg : m_cfg;
  mutable used : bool;    (** false = removable by Opt.2 *)
  mutable removed : bool;
  mutable meta : int;     (** metadata set, 0 or 1 (Opt.3) *)
  mutable stage : int;    (** -1 until composed *)
}

val make_slot :
  kind:Newton_dataplane.Module_cost.kind -> branch:int -> prim:int ->
  suite:int -> used:bool -> m_cfg -> slot

(** Used and not removed. *)
val is_active : slot -> bool

val kind_char : slot -> string
val slot_to_string : slot -> string

(** A newton_init classifier entry (ternary over 5-tuple + TCP flags)
    dispatching traffic to one branch's chain. *)
type init_entry = {
  ie_branch : int;
  ie_matches : (Field.t * int * int) list; (** field, value, mask *)
}

(** Match-all entry for a branch whose front filter stayed. *)
val init_match_all : int -> init_entry

(** Fields newton_init can match on. *)
val init_fields : Field.t list
