(** Zipf-distributed sampling over ranks [1..n], used by the trace
    generators to model flow-popularity skew.  O(log n) per sample. *)

type t

(** @raise Invalid_argument if [n <= 0] or [exponent < 0]. *)
val create : n:int -> exponent:float -> t

val size : t -> int
val exponent : t -> float

(** Draw a rank in [1..n]; rank 1 is the most popular. *)
val sample : t -> Prng.t -> int

(** Probability mass of a 1-based rank (0 outside [1..n]). *)
val pmf : t -> int -> float
