(** Aligned plain-text table rendering for the benchmark harness. *)

type align = Left | Right

type t

(** [create ?aligns headers]; alignment defaults to [Right] everywhere.
    @raise Invalid_argument on an aligns/headers length mismatch. *)
val create : ?aligns:align list -> string list -> t

(** @raise Invalid_argument on a cell-count mismatch. *)
val add_row : t -> string list -> unit

val add_rowf : t -> string list -> unit

val render : t -> string
val print : t -> unit

(** Write as a gnuplot-friendly .dat file (commented header +
    tab-separated rows). *)
val write_dat : t -> string -> unit

(** Section banner between experiments. *)
val banner : string -> unit

val fpct : float -> string
val f2 : float -> string
val f4 : float -> string
val sci : float -> string
