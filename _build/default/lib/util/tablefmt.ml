(** Aligned plain-text table rendering for the benchmark harness.

    Every figure/table reproduction prints its rows through this module so
    the bench output reads like the paper's tables. *)

type align = Left | Right

type t = {
  headers : string list;
  aligns : align list;
  mutable rows : string list list; (* reverse order *)
}

let create ?aligns headers =
  let aligns =
    match aligns with
    | Some a ->
        if List.length a <> List.length headers then
          invalid_arg "Tablefmt.create: aligns/headers length mismatch";
        a
    | None -> List.map (fun _ -> Right) headers
  in
  { headers; aligns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Tablefmt.add_row: cell count mismatch";
  t.rows <- cells :: t.rows

let add_rowf t fmts = add_row t fmts

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) row)
    all;
  let pad align width s =
    let n = width - String.length s in
    if n <= 0 then s
    else match align with Left -> s ^ String.make n ' ' | Right -> String.make n ' ' ^ s
  in
  let render_row row =
    List.mapi (fun i c -> pad (List.nth t.aligns i) widths.(i) c) row
    |> String.concat "  "
  in
  let sep =
    Array.to_list widths |> List.map (fun w -> String.make w '-') |> String.concat "  "
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (render_row t.headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print t = print_string (render t)

(** Write the table as a gnuplot-friendly .dat file: a commented header
    line, then tab-separated rows. *)
let write_dat t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc ("# " ^ String.concat "\t" t.headers ^ "\n");
      List.iter
        (fun row -> output_string oc (String.concat "\t" row ^ "\n"))
        (List.rev t.rows))

(** Section banner used between experiments in bench output. *)
let banner title =
  let line = String.make (String.length title + 8) '=' in
  Printf.printf "\n%s\n==  %s  ==\n%s\n" line title line

let fpct x = Printf.sprintf "%.1f%%" (100.0 *. x)
let f2 x = Printf.sprintf "%.2f" x
let f4 x = Printf.sprintf "%.4f" x
let sci x = Printf.sprintf "%.2e" x
