(** Deterministic pseudo-random number generation.

    Every stochastic component of the reproduction (trace generation, hash
    seeds, failure injection) draws from an explicit [t] so that experiments
    are reproducible bit-for-bit given a seed.  The core generator is
    SplitMix64, which is fast, passes BigCrush, and splits cleanly into
    independent streams. *)

type t = { mutable state : int64 }

let create ?(seed = 0x9E3779B97F4A7C15L) () = { state = seed }

let of_int seed = { state = Int64.of_int seed }

(* SplitMix64 step: state += golden gamma; output = mix(state). *)
let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** [split t] returns a new generator whose stream is statistically
    independent of [t]'s subsequent outputs. *)
let split t =
  let seed = next_int64 t in
  { state = Int64.logxor seed 0x2545F4914F6CDD1DL }

(** Non-negative int uniform over the full 62-bit range. *)
let next_int t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

(** [int t bound] is uniform in [0, bound). Raises if [bound <= 0]. *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  next_int t mod bound

(** Uniform float in [0, 1). *)
let float t =
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits /. 9007199254740992.0 (* 2^53 *)

(** Uniform float in [0, hi). *)
let float_range t hi = float t *. hi

let bool t = Int64.logand (next_int64 t) 1L = 1L

(** Bernoulli trial with success probability [p]. *)
let bernoulli t p = float t < p

(** Exponential variate with rate [lambda] (mean [1/lambda]). *)
let exponential t lambda =
  if lambda <= 0.0 then invalid_arg "Prng.exponential: lambda must be positive";
  -.log (1.0 -. float t) /. lambda

(** Geometric: number of failures before first success, p in (0,1]. *)
let geometric t p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Prng.geometric: p out of range";
  if p >= 1.0 then 0
  else
    let u = float t in
    int_of_float (Float.round (log (1.0 -. u) /. log (1.0 -. p)))

(** Pareto variate with shape [alpha] and scale [xm]. Heavy-tailed flow
    sizes in the trace generator use this. *)
let pareto t ~alpha ~xm =
  let u = float t in
  xm /. ((1.0 -. u) ** (1.0 /. alpha))

(** Fisher-Yates shuffle in place. *)
let shuffle t arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(** Pick a uniformly random element of a non-empty array. *)
let choice t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choice: empty array";
  arr.(int t (Array.length arr))
