(** A minimal JSON implementation (strict RFC 8259 subset: objects,
    arrays, strings with common escapes, ints/floats, booleans, null). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of { pos : int; msg : string }

(** Compact rendering (no insignificant whitespace). *)
val to_string : t -> string

(** Parse a complete document.
    @raise Parse_error on malformed input or trailing garbage. *)
val of_string : string -> t

(** Object member lookup ([None] on non-objects too). *)
val member : string -> t -> t option

val to_list : t -> t list option
val to_string_opt : t -> string option
val to_int_opt : t -> int option
