(** Zipf-distributed sampling over ranks [1..n].

    Internet flow popularity is famously Zipfian; the CAIDA/MAWI trace
    substitutes in [Newton_trace] draw flow ranks from this sampler.  We
    precompute the normalised CDF once and sample by binary search, so each
    draw is O(log n). *)

type t = {
  n : int;
  exponent : float;
  cdf : float array; (* cdf.(i) = P(rank <= i+1) *)
}

let create ~n ~exponent =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if exponent < 0.0 then invalid_arg "Zipf.create: exponent must be >= 0";
  let weights = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** exponent)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (weights.(i) /. total);
    cdf.(i) <- !acc
  done;
  (* Guard against floating-point shortfall at the top end. *)
  cdf.(n - 1) <- 1.0;
  { n; exponent; cdf }

let size t = t.n
let exponent t = t.exponent

(** [sample t rng] draws a rank in [1..n]; rank 1 is the most popular. *)
let sample t rng =
  let u = Prng.float rng in
  (* Binary search for the first index with cdf >= u. *)
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo + 1

(** Probability mass of a given rank (1-based). *)
let pmf t rank =
  if rank < 1 || rank > t.n then 0.0
  else if rank = 1 then t.cdf.(0)
  else t.cdf.(rank - 1) -. t.cdf.(rank - 2)
