(** Small statistics helpers used by the benchmark harness and tests. *)

let mean xs =
  match xs with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let mean_arr xs =
  if Array.length xs = 0 then nan
  else Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let variance xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      let n = float_of_int (List.length xs) in
      List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs /. (n -. 1.0)

let stddev xs = sqrt (variance xs)

(** [percentile p xs] with linear interpolation; [p] in [0,100]. *)
let percentile p xs =
  match xs with
  | [] -> nan
  | _ ->
      let sorted = List.sort compare xs |> Array.of_list in
      let n = Array.length sorted in
      if n = 1 then sorted.(0)
      else
        let rank = p /. 100.0 *. float_of_int (n - 1) in
        let lo = int_of_float (Float.of_int (int_of_float rank) |> Float.min (float_of_int (n - 2))) in
        let frac = rank -. float_of_int lo in
        sorted.(lo) +. (frac *. (sorted.(lo + 1) -. sorted.(lo)))

let median xs = percentile 50.0 xs
let min_l xs = List.fold_left min infinity xs
let max_l xs = List.fold_left max neg_infinity xs

(** Empirical CDF as (value, fraction<=value) points, one per distinct value. *)
let ecdf xs =
  let sorted = List.sort compare xs in
  let n = float_of_int (List.length sorted) in
  let rec go i acc = function
    | [] -> List.rev acc
    | x :: rest ->
        let i = i + 1 in
        let acc =
          match rest with
          | y :: _ when y = x -> acc (* emit only the last of a run *)
          | _ -> (x, float_of_int i /. n) :: acc
        in
        go i acc rest
  in
  go 0 [] sorted

(** Ratio helper that tolerates a zero denominator. *)
let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den
