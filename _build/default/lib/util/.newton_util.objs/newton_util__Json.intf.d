lib/util/json.mli:
