lib/util/tablefmt.ml: Array Buffer Fun List Printf String
