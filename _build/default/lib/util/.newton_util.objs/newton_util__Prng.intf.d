lib/util/prng.mli:
