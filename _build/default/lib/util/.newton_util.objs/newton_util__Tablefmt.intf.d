lib/util/tablefmt.mli:
