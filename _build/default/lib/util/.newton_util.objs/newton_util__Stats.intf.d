lib/util/stats.mli:
