(** Deterministic pseudo-random number generation (SplitMix64).

    Every stochastic component of the library draws from an explicit
    generator so experiments reproduce bit-for-bit given a seed. *)

type t

(** Create a generator; the default seed is the SplitMix64 golden gamma. *)
val create : ?seed:int64 -> unit -> t

(** Seed from an [int]. *)
val of_int : int -> t

(** Raw 64-bit output (advances the state). *)
val next_int64 : t -> int64

(** A new generator statistically independent of [t]'s later outputs. *)
val split : t -> t

(** Non-negative int uniform over 62 bits. *)
val next_int : t -> int

(** [int t bound] is uniform in [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)
val int : t -> int -> int

(** Uniform float in [0, 1). *)
val float : t -> float

(** Uniform float in [0, hi). *)
val float_range : t -> float -> float

val bool : t -> bool

(** Bernoulli trial with success probability [p]. *)
val bernoulli : t -> float -> bool

(** Exponential variate with rate [lambda] (mean 1/lambda).
    @raise Invalid_argument if [lambda <= 0]. *)
val exponential : t -> float -> float

(** Failures before the first success; [p] in (0, 1]. *)
val geometric : t -> float -> int

(** Pareto variate with shape [alpha] and scale (minimum) [xm]. *)
val pareto : t -> alpha:float -> xm:float -> float

(** Fisher–Yates shuffle in place. *)
val shuffle : t -> 'a array -> unit

(** Uniform element of a non-empty array.
    @raise Invalid_argument on an empty array. *)
val choice : t -> 'a array -> 'a
