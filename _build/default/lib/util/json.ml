(** A minimal JSON implementation (parse + print).

    The sealed build environment has no JSON library, and the rule
    artifacts ({!Newton_p4gen.Rules}) plus their validator need one, so
    this is a small, strict RFC 8259 subset: objects, arrays, strings
    (with the common escapes), integers/floats, booleans, null.  No
    streaming, no exotic number forms beyond the usual. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of { pos : int; msg : string }

(* ---------------- printing ---------------- *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let rec to_string = function
  | Null -> "null"
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | String s -> escape_string s
  | List l -> "[" ^ String.concat "," (List.map to_string l) ^ "]"
  | Obj kvs ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> escape_string k ^ ":" ^ to_string v) kvs)
      ^ "}"

(* ---------------- parsing ---------------- *)

type state = { src : string; mutable pos : int }

let fail st msg = raise (Parse_error { pos = st.pos; msg })

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> fail st (Printf.sprintf "expected %C, got %C" c c')
  | None -> fail st (Printf.sprintf "expected %C, got end of input" c)

let parse_literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st ("expected " ^ word)

let parse_string_body st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some '"' -> advance st; Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance st; Buffer.add_char buf '\\'; go ()
        | Some '/' -> advance st; Buffer.add_char buf '/'; go ()
        | Some 'n' -> advance st; Buffer.add_char buf '\n'; go ()
        | Some 'r' -> advance st; Buffer.add_char buf '\r'; go ()
        | Some 't' -> advance st; Buffer.add_char buf '\t'; go ()
        | Some 'b' -> advance st; Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance st; Buffer.add_char buf '\012'; go ()
        | Some 'u' ->
            advance st;
            if st.pos + 4 > String.length st.src then fail st "bad \\u escape";
            let hex = String.sub st.src st.pos 4 in
            (match int_of_string_opt ("0x" ^ hex) with
            | Some code when code < 128 ->
                st.pos <- st.pos + 4;
                Buffer.add_char buf (Char.chr code)
            | Some _ ->
                st.pos <- st.pos + 4;
                Buffer.add_char buf '?' (* non-ASCII escapes degrade *)
            | None -> fail st "bad \\u escape");
            go ()
        | _ -> fail st "bad escape")
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
  in
  while (match peek st with Some c when is_num_char c -> true | _ -> false) do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  match int_of_string_opt text with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail st ("bad number " ^ text))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' -> parse_obj st
  | Some '[' -> parse_list st
  | Some '"' -> String (parse_string_body st)
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some c when c = '-' || (c >= '0' && c <= '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected %C" c)

and parse_obj st =
  expect st '{';
  skip_ws st;
  if peek st = Some '}' then begin
    advance st;
    Obj []
  end
  else begin
    let rec members acc =
      skip_ws st;
      let key = parse_string_body st in
      skip_ws st;
      expect st ':';
      let v = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
          advance st;
          members ((key, v) :: acc)
      | Some '}' ->
          advance st;
          Obj (List.rev ((key, v) :: acc))
      | _ -> fail st "expected ',' or '}'"
    in
    members []
  end

and parse_list st =
  expect st '[';
  skip_ws st;
  if peek st = Some ']' then begin
    advance st;
    List []
  end
  else begin
    let rec items acc =
      let v = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
          advance st;
          skip_ws st;
          items (v :: acc)
      | Some ']' ->
          advance st;
          List (List.rev (v :: acc))
      | _ -> fail st "expected ',' or ']'"
    in
    items []
  end

(** Parse a complete JSON document (trailing whitespace allowed).
    @raise Parse_error on malformed input. *)
let of_string src =
  let st = { src; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length src then fail st "trailing garbage";
  v

(* ---------------- accessors ---------------- *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

let to_list = function List l -> Some l | _ -> None

let to_string_opt = function String s -> Some s | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None
