(** Small statistics helpers for the benchmark harness and tests. *)

(** Arithmetic mean; [nan] on empty input. *)
val mean : float list -> float

val mean_arr : float array -> float

(** Sample variance (n-1 denominator); 0 for fewer than two points. *)
val variance : float list -> float

val stddev : float list -> float

(** Percentile with linear interpolation, [p] in [0, 100]; [nan] on
    empty input. *)
val percentile : float -> float list -> float

val median : float list -> float
val min_l : float list -> float
val max_l : float list -> float

(** Empirical CDF as (value, fraction <= value), one point per distinct
    value. *)
val ecdf : float list -> (float * float) list

(** num/den as float; 0 on a zero denominator. *)
val ratio : int -> int -> float
