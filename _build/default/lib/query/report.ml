(** Monitoring reports — what queries export to the analyzer.

    A report identifies the query, the time window, the operation-key
    values that satisfied the query intent, and the aggregate value(s)
    behind the decision.  Both the exact reference evaluator and the
    data-plane runtime produce this type, so results are directly
    comparable in accuracy experiments. *)

type t = {
  query_id : int;
  window : int;        (** window index = floor(ts / window_size) *)
  keys : int array;    (** projected (masked) operation-key values *)
  value : int;         (** the (combined) aggregate that crossed the intent *)
  value2 : int option; (** second aggregate for [Pair]-combined queries *)
}

let make ?(value2 = None) ~query_id ~window ~keys ~value () =
  { query_id; window; keys; value; value2 }

let compare a b =
  match compare a.query_id b.query_id with
  | 0 -> (
      match compare a.window b.window with
      | 0 -> compare a.keys b.keys
      | c -> c)
  | c -> c

let equal_identity a b =
  a.query_id = b.query_id && a.window = b.window && a.keys = b.keys

(** Deduplicate by (query, window, keys), keeping the first occurrence. *)
let dedup reports =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun r ->
      let key = (r.query_id, r.window, r.keys) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    reports

(** The set of distinct key vectors reported by a query (across windows). *)
let reported_keys reports =
  List.sort_uniq Stdlib.compare (List.map (fun r -> r.keys) reports)

let to_string t =
  let keys = Array.to_list t.keys |> List.map string_of_int |> String.concat "," in
  let v2 = match t.value2 with None -> "" | Some v -> Printf.sprintf " v2=%d" v in
  Printf.sprintf "Q%d w%d keys=(%s) v=%d%s" t.query_id t.window keys t.value v2

let pp fmt t = Format.pp_print_string fmt (to_string t)
