(** Textual query DSL — a Sonata-flavoured front-end.

    Grammar:
    {v
      query    := chain ('||' chain)* ('=>' combine)?
      chain    := prim ('|' prim)*
      prim     := filter(pred, ...) | map(key, ...)
                | distinct(key, ...) | reduce(key, ..., agg)
      agg      := count | sum <field> | max <field>
      key      := <field> ('&' INT)?
      pred     := count CMP INT | <field> ('&' INT)? CMP value
      value    := INT | IPv4 | tcp|udp|icmp|syn|synack|ack|fin|rst|psh
      combine  := (sub | min | pair) '(' count CMP INT ')'
    v} *)

exception Parse_error of string

(** Parse a query; defaults: id 0, name "adhoc", the paper's 100 ms
    window.  The result is validated.
    @raise Parse_error on syntax or validation errors.
    @raise Lexer.Lex_error on bad tokens. *)
val parse :
  ?id:int -> ?name:string -> ?description:string -> ?window:float -> string ->
  Ast.t

val parse_exn :
  ?id:int -> ?name:string -> ?description:string -> ?window:float -> string ->
  Ast.t

(** Result-typed wrapper collecting lex and parse errors. *)
val parse_result :
  ?id:int -> ?name:string -> ?description:string -> ?window:float -> string ->
  (Ast.t, string) result
