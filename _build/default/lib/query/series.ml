(** Report analysis: per-window time series over the monitoring
    reports a deployment produced — what an operator dashboard shows.

    Aggregates {!Report.t} lists by (query, window), exposes counts,
    top-k keys, active spans and compact text sparklines. *)

type t = {
  (* (query_id, window) -> report count *)
  counts : (int * int, int) Hashtbl.t;
  (* query_id -> key vector -> occurrences *)
  keys : (int, (int array, int) Hashtbl.t) Hashtbl.t;
  mutable min_window : int;
  mutable max_window : int;
  mutable total : int;
}

let of_reports reports =
  let t =
    {
      counts = Hashtbl.create 64;
      keys = Hashtbl.create 8;
      min_window = max_int;
      max_window = min_int;
      total = 0;
    }
  in
  List.iter
    (fun (r : Report.t) ->
      t.total <- t.total + 1;
      if r.Report.window < t.min_window then t.min_window <- r.Report.window;
      if r.Report.window > t.max_window then t.max_window <- r.Report.window;
      let ck = (r.Report.query_id, r.Report.window) in
      Hashtbl.replace t.counts ck
        (1 + Option.value (Hashtbl.find_opt t.counts ck) ~default:0);
      let per_q =
        match Hashtbl.find_opt t.keys r.Report.query_id with
        | Some h -> h
        | None ->
            let h = Hashtbl.create 16 in
            Hashtbl.replace t.keys r.Report.query_id h;
            h
      in
      Hashtbl.replace per_q r.Report.keys
        (1 + Option.value (Hashtbl.find_opt per_q r.Report.keys) ~default:0))
    reports;
  t

let total t = t.total

(** Query ids that produced at least one report, ascending. *)
let query_ids t =
  Hashtbl.fold (fun q _ acc -> q :: acc) t.keys [] |> List.sort_uniq compare

(** Window range covered by any report; [None] when empty. *)
let window_span t =
  if t.total = 0 then None else Some (t.min_window, t.max_window)

(** Reports of one query in one window. *)
let count t ~query_id ~window =
  Option.value (Hashtbl.find_opt t.counts (query_id, window)) ~default:0

(** First/last window in which a query reported — the observed span of
    the incident. *)
let active_span t ~query_id =
  Hashtbl.fold
    (fun (q, w) _ acc ->
      if q <> query_id then acc
      else
        match acc with
        | None -> Some (w, w)
        | Some (lo, hi) -> Some (min lo w, max hi w))
    t.counts None

(** Most-reported key vectors of a query, descending. *)
let top_keys t ~query_id ~n =
  match Hashtbl.find_opt t.keys query_id with
  | None -> []
  | Some h ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) h []
      |> List.sort (fun (_, a) (_, b) -> compare b a)
      |> List.filteri (fun i _ -> i < n)

let spark_chars = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#' |]

(** One character per window across the series' span, scaled to the
    query's peak ([""] when the query never reported). *)
let sparkline t ~query_id =
  match window_span t with
  | None -> ""
  | Some (lo, hi) ->
      let values =
        Array.init (hi - lo + 1) (fun i -> count t ~query_id ~window:(lo + i))
      in
      let peak = Array.fold_left max 0 values in
      if peak = 0 then ""
      else
        String.init (Array.length values) (fun i ->
            let v = values.(i) in
            if v = 0 then spark_chars.(0)
            else
              spark_chars.(1 + (v * (Array.length spark_chars - 2) / peak)))

(** Multi-line operator summary of all queries in the series. *)
let summary ?(top = 3) t =
  let buf = Buffer.create 256 in
  List.iter
    (fun q ->
      let span =
        match active_span t ~query_id:q with
        | Some (lo, hi) -> Printf.sprintf "windows %d-%d" lo hi
        | None -> "inactive"
      in
      Buffer.add_string buf
        (Printf.sprintf "Q%-3d %-14s [%s]\n" q span (sparkline t ~query_id:q));
      List.iter
        (fun (k, v) ->
          let key_str =
            Array.to_list k |> List.map string_of_int |> String.concat ","
          in
          Buffer.add_string buf (Printf.sprintf "      %s: %d reports\n" key_str v))
        (top_keys t ~query_id:q ~n:top))
    (query_ids t);
  Buffer.contents buf
