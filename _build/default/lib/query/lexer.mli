(** Tokenizer for the textual query DSL. *)

type token =
  | IDENT of string
  | INT of int
  | IP of int      (** dotted-quad IPv4 literal *)
  | LPAREN | RPAREN
  | COMMA
  | PIPE           (** [|] — primitive chaining *)
  | PARALLEL       (** [||] — branch separator *)
  | ARROW          (** [=>] — combine clause *)
  | AMP            (** [&] and [&&] *)
  | EQ | NEQ | GT | GE | LT | LE
  | DOT
  | EOF

exception Lex_error of { pos : int; msg : string }

val token_to_string : token -> string

(** Tokenize a query string; the list ends with [EOF].
    @raise Lex_error on unexpected characters. *)
val tokenize : string -> token list
