(** Tokenizer for the textual query DSL (see {!Parser}). *)

open Newton_packet

type token =
  | IDENT of string   (** filter, map, dip, count, sum ... *)
  | INT of int        (** decimal or 0x hex *)
  | IP of int         (** dotted quad, e.g. 10.0.0.1 *)
  | LPAREN | RPAREN
  | COMMA
  | PIPE              (** | — primitive chaining *)
  | PARALLEL          (** || — branch separator *)
  | ARROW             (** => — combine clause *)
  | AMP               (** & — bit mask *)
  | EQ | NEQ | GT | GE | LT | LE
  | DOT
  | EOF

exception Lex_error of { pos : int; msg : string }

let is_digit c = c >= '0' && c <= '9'
let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || is_digit c || c = '_'

let token_to_string = function
  | IDENT s -> s
  | INT i -> string_of_int i
  | IP i -> Packet.ip_to_string i
  | LPAREN -> "(" | RPAREN -> ")" | COMMA -> "," | PIPE -> "|"
  | PARALLEL -> "||" | ARROW -> "=>" | AMP -> "&"
  | EQ -> "==" | NEQ -> "!=" | GT -> ">" | GE -> ">=" | LT -> "<" | LE -> "<="
  | DOT -> "." | EOF -> "<eof>"

(** Tokenize a query string. Raises {!Lex_error} on bad input. *)
let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let push t = toks := t :: !toks in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '(' then (push LPAREN; incr i)
    else if c = ')' then (push RPAREN; incr i)
    else if c = ',' then (push COMMA; incr i)
    else if c = '.' then (push DOT; incr i)
    else if c = '&' then
      if peek 1 = Some '&' then (push AMP; i := !i + 2) (* && == & for predicates *)
      else (push AMP; incr i)
    else if c = '|' then
      if peek 1 = Some '|' then (push PARALLEL; i := !i + 2)
      else (push PIPE; incr i)
    else if c = '=' then begin
      match peek 1 with
      | Some '=' -> push EQ; i := !i + 2
      | Some '>' -> push ARROW; i := !i + 2
      | _ -> raise (Lex_error { pos = !i; msg = "expected == or =>" })
    end
    else if c = '!' then begin
      if peek 1 = Some '=' then (push NEQ; i := !i + 2)
      else raise (Lex_error { pos = !i; msg = "expected !=" })
    end
    else if c = '>' then
      if peek 1 = Some '=' then (push GE; i := !i + 2) else (push GT; incr i)
    else if c = '<' then
      if peek 1 = Some '=' then (push LE; i := !i + 2) else (push LT; incr i)
    else if is_digit c then begin
      (* int, hex int, or dotted-quad IP *)
      let start = !i in
      let int_token text =
        match int_of_string_opt text with
        | Some v -> push (INT v)
        | None -> raise (Lex_error { pos = start; msg = "integer out of range: " ^ text })
      in
      if c = '0' && peek 1 = Some 'x' then begin
        i := !i + 2;
        while !i < n && (is_digit src.[!i]
                        || (src.[!i] >= 'a' && src.[!i] <= 'f')
                        || (src.[!i] >= 'A' && src.[!i] <= 'F')) do incr i done;
        int_token (String.sub src start (!i - start))
      end
      else begin
        while !i < n && is_digit src.[!i] do incr i done;
        (* lookahead for an IP: digit groups separated by dots followed by
           another digit (a plain DOT token would be field access) *)
        if !i < n && src.[!i] = '.' && (match peek 1 with Some d -> is_digit d | None -> false)
        then begin
          let j = ref !i in
          let groups = ref 1 in
          let ok = ref true in
          while !ok && !groups < 4 do
            if !j < n && src.[!j] = '.' then begin
              incr j;
              let s = !j in
              while !j < n && is_digit src.[!j] do incr j done;
              if !j = s then ok := false else incr groups
            end
            else ok := false
          done;
          if !ok && !groups = 4 then begin
            let text = String.sub src start (!j - start) in
            i := !j;
            match Packet.ip_of_string text with
            | ip -> push (IP ip)
            | exception Invalid_argument _ ->
                raise (Lex_error { pos = start; msg = "bad IPv4 literal " ^ text })
          end
          else int_token (String.sub src start (!i - start))
        end
        else int_token (String.sub src start (!i - start))
      end
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      push (IDENT (String.sub src start (!i - start)))
    end
    else raise (Lex_error { pos = !i; msg = Printf.sprintf "unexpected character %C" c })
  done;
  push EOF;
  List.rev !toks
