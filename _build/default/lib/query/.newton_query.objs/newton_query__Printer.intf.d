lib/query/printer.mli: Ast
