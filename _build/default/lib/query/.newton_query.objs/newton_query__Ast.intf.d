lib/query/ast.mli: Field Newton_packet
