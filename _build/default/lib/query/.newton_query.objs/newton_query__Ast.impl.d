lib/query/ast.ml: Field List Newton_packet Option Printf String
