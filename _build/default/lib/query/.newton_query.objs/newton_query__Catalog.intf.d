lib/query/catalog.mli: Ast
