lib/query/lexer.ml: List Newton_packet Packet Printf String
