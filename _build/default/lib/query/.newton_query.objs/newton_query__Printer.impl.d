lib/query/printer.ml: Ast Field List Newton_packet Printf String
