lib/query/report.ml: Array Format Hashtbl List Printf Stdlib String
