lib/query/series.ml: Array Buffer Hashtbl List Option Printf Report String
