lib/query/series.mli: Report
