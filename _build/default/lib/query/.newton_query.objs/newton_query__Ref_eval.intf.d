lib/query/ref_eval.mli: Ast Newton_packet Packet Report
