lib/query/parser.ml: Ast Field Lexer List Newton_packet Printf String
