lib/query/report.mli: Format
