lib/query/ref_eval.ml: Array Ast Exact Hashtbl List Newton_packet Newton_sketch Packet Printf Report String
