lib/query/catalog.ml: Ast Field Newton_packet Printf
