lib/query/lexer.mli:
