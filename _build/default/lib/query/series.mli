(** Report analysis: per-window time series over monitoring reports —
    counts, top-k keys, active spans, compact text sparklines. *)

type t

val of_reports : Report.t list -> t

val total : t -> int

(** Query ids with at least one report, ascending. *)
val query_ids : t -> int list

(** Window range covered by any report; [None] when empty. *)
val window_span : t -> (int * int) option

val count : t -> query_id:int -> window:int -> int

(** First/last window in which the query reported. *)
val active_span : t -> query_id:int -> (int * int) option

(** Most-reported key vectors, descending, at most [n]. *)
val top_keys : t -> query_id:int -> n:int -> (int array * int) list

(** Density glyphs used by {!sparkline}, in increasing order. *)
val spark_chars : char array

(** One glyph per window across the series span, scaled to the query's
    peak; [""] when the query never reported. *)
val sparkline : t -> query_id:int -> string

(** Multi-line operator summary (span + sparkline + top keys per
    query). *)
val summary : ?top:int -> t -> string
