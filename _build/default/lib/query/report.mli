(** Monitoring reports — what queries export to the analyzer; produced
    by both the data-plane runtime and the exact reference evaluator so
    results are directly comparable. *)

type t = {
  query_id : int;
  window : int;        (** floor(ts / window length) *)
  keys : int array;    (** projected (masked) operation-key values *)
  value : int;         (** the (combined) aggregate behind the report *)
  value2 : int option; (** second aggregate of [Pair]-combined queries *)
}

val make :
  ?value2:int option -> query_id:int -> window:int -> keys:int array ->
  value:int -> unit -> t

val compare : t -> t -> int

(** Same (query, window, keys)? *)
val equal_identity : t -> t -> bool

(** Deduplicate by identity, keeping first occurrences. *)
val dedup : t list -> t list

(** Distinct key vectors across all given reports. *)
val reported_keys : t list -> int array list

val to_string : t -> string
val pp : Format.formatter -> t -> unit
