lib/network/fib.mli: Route Topo
