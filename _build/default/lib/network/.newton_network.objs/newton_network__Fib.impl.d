lib/network/fib.ml: Array List Newton_dataplane Printf Route Table Topo
