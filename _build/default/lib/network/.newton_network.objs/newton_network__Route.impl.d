lib/network/route.ml: Array List Option Queue Set Topo
