lib/network/topo.ml: Array Float Fun List Newton_util Printf
