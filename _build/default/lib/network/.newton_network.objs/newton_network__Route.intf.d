lib/network/route.mli: Topo
