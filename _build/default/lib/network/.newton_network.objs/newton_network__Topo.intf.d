lib/network/topo.mli:
