(** Per-switch forwarding tables (FIBs) with longest-prefix matching.

    {!Route} computes paths centrally; this module materialises them the
    way a real network does — as per-switch match-action tables mapping
    destination prefixes to next hops, built on the same reconfigurable
    {!Newton_dataplane.Table} Newton's own modules use.  That makes the
    forwarding-state population (which Sonata's reloads must restore,
    Fig. 10) a measured quantity instead of a constant, and lets tests
    exercise convergence effects: between a failure and the next
    recomputation, packets can blackhole or loop exactly as they would
    in practice — the dynamics motivating resilient placement (§5.2).

    Hosts are addressed by /24 prefixes derived from their node id. *)

open Newton_dataplane

(** The /24 network assigned to a host node. *)
let host_prefix host = 0x0A000000 lor ((host land 0xFFFF) lsl 8)

let prefix_mask = 0xFFFFFF00

(** An address inside a host's prefix. *)
let host_addr ?(low = 1) host = host_prefix host lor (low land 0xFF)

type t = {
  topo : Topo.t;
  tables : int Table.t array; (** per switch; action = next-hop node *)
  mutable generation : int;   (** bumped on every recompute *)
}

let create topo =
  {
    topo;
    tables =
      Array.init (Topo.num_switches topo) (fun s ->
          Table.create ~capacity:65536
            ~name:(Printf.sprintf "fib_sw%d" s)
            ~key_width:1 ());
    generation = 0;
  }

let topo t = t.topo
let generation t = t.generation

(** Forwarding entries installed on one switch. *)
let entries t s = Table.size t.tables.(s)

(** Total forwarding entries network-wide — what a full reload must
    restore. *)
let total_entries t =
  Array.fold_left (fun acc tbl -> acc + Table.size tbl) 0 t.tables

(** (Re)compute every switch's FIB from the current routing state
    (honouring failed links).  Returns the number of installed entries. *)
let recompute t (route : Route.t) =
  t.generation <- t.generation + 1;
  Array.iter Table.clear t.tables;
  let installed = ref 0 in
  List.iter
    (fun host ->
      (* BFS tree towards [host]: each switch's next hop is any usable
         neighbor one step closer. *)
      let dist = Route.distances route host in
      List.iter
        (fun s ->
          if dist.(s) < max_int && dist.(s) > 0 then begin
            let next =
              List.find_opt
                (fun n -> dist.(n) = dist.(s) - 1)
                (List.filter
                   (fun n -> not (Route.is_failed route (s, n)))
                   (Topo.neighbors t.topo s))
            in
            match next with
            | Some n ->
                ignore
                  (Table.add t.tables.(s) ~priority:24
                     ~matches:
                       [| Table.Ternary { value = host_prefix host; mask = prefix_mask } |]
                     n);
                incr installed
            | None -> ()
          end)
        (Topo.switches t.topo))
    (Topo.hosts t.topo);
  !installed

(** Next hop for a destination address at a switch ([None] = no route:
    the packet blackholes). *)
let next_hop t ~switch ~dst_addr = Table.lookup t.tables.(switch) [| dst_addr |]

(** Walk a packet hop by hop through the FIBs from a host to a
    destination address.  Unlike {!Route.switch_path}, this uses only
    the installed state, so it observes stale-FIB effects. *)
type walk =
  | Delivered of int list  (** switches traversed, in order *)
  | Blackholed of int list (** no route at the last listed switch *)
  | Looped of int list     (** forwarding loop detected *)

let walk ?(max_hops = 64) t ~src_host ~dst_addr =
  let first = Topo.host_switch t.topo src_host in
  let rec go switch acc hops =
    if hops > max_hops then Looped (List.rev acc)
    else
      match next_hop t ~switch ~dst_addr with
      | None -> Blackholed (List.rev (switch :: acc))
      | Some n when Topo.is_host t.topo n -> Delivered (List.rev (switch :: acc))
      | Some n ->
          if List.mem n acc then Looped (List.rev (switch :: acc))
          else go n (switch :: acc) (hops + 1)
  in
  go first [] 0
