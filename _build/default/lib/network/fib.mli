(** Per-switch forwarding tables (FIBs) with longest-prefix matching,
    materialised from {!Route} state on the same reconfigurable tables
    Newton uses.  Walks observe convergence effects (blackholes/loops on
    stale state).  Hosts are addressed by /24 prefixes derived from the
    node id. *)

(** The /24 network assigned to a host node. *)
val host_prefix : int -> int

val prefix_mask : int

(** An address inside a host's prefix ([low] defaults to 1). *)
val host_addr : ?low:int -> int -> int

type t

val create : Topo.t -> t

val topo : t -> Topo.t

(** Bumped on every {!recompute}. *)
val generation : t -> int

(** Forwarding entries installed on one switch. *)
val entries : t -> int -> int

(** Entries network-wide — what a full reload must restore. *)
val total_entries : t -> int

(** Rebuild every switch's FIB from the routing state (honouring failed
    links); returns the entries installed. *)
val recompute : t -> Route.t -> int

(** Next hop for a destination address at a switch; [None] = no route. *)
val next_hop : t -> switch:int -> dst_addr:int -> int option

type walk =
  | Delivered of int list  (** switches traversed, in order *)
  | Blackholed of int list (** no route at the last listed switch *)
  | Looped of int list     (** forwarding loop detected *)

(** Walk hop by hop through installed state only. *)
val walk : ?max_hops:int -> t -> src_host:int -> dst_addr:int -> walk
