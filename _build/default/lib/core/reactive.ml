(** Reactive intents: automatic runtime drill-down.

    The paper motivates on-demand queries with the operator loop "detect
    an anomaly → install a refined query to zoom in" (§1, §3.1).  This
    service automates that loop: a {!rule} binds a trigger query to a
    template; whenever the trigger reports a new key, the template is
    instantiated with that key and installed into the running device —
    milliseconds, no interruption — up to a per-rule instance budget.

    Typical use: a standing Q5 (UDP-DDoS victims) whose reports spawn a
    per-victim attacker-enumeration query. *)

open Newton_query

type rule = {
  trigger_id : int;                   (** query id whose reports trigger *)
  template : Report.t -> Ast.t;       (** refined query for a report *)
  max_instances : int;                (** per-rule budget of spawned queries *)
}

(** A spawned drill-down instance. *)
type spawned = {
  rule_trigger : int;
  trigger_keys : int array;
  handle : Newton.handle;
  query : Ast.t;
}

type t = {
  device : Newton.Device.t;
  rules : rule list;
  mutable spawned : spawned list;
  mutable consumed : int; (** device reports already scanned *)
}

let create device rules = { device; rules; spawned = []; consumed = 0 }

let device t = t.device
let spawned t = List.rev t.spawned

let instances_of t trigger_id =
  List.length (List.filter (fun s -> s.rule_trigger = trigger_id) t.spawned)

let already_spawned t trigger_id keys =
  List.exists
    (fun s -> s.rule_trigger = trigger_id && s.trigger_keys = keys)
    t.spawned

(** Scan reports that arrived since the last step and install drill-down
    queries for new trigger keys.  Returns the queries spawned by this
    step (with their install latencies). *)
let step t =
  let reports = Newton.Device.reports t.device in
  let fresh = List.filteri (fun i _ -> i >= t.consumed) reports in
  t.consumed <- List.length reports;
  List.filter_map
    (fun (r : Report.t) ->
      match List.find_opt (fun rule -> rule.trigger_id = r.Report.query_id) t.rules with
      | None -> None
      | Some rule ->
          if
            already_spawned t rule.trigger_id r.Report.keys
            || instances_of t rule.trigger_id >= rule.max_instances
          then None
          else begin
            let q = rule.template r in
            let handle, latency = Newton.Device.add_query t.device q in
            t.spawned <-
              { rule_trigger = rule.trigger_id; trigger_keys = r.Report.keys;
                handle; query = q }
              :: t.spawned;
            Some (q, latency)
          end)
    fresh

(** Tear down every spawned instance (e.g. after mitigation); returns
    how many were removed. *)
let retract_all t =
  let n =
    List.fold_left
      (fun acc s ->
        match Newton.Device.remove_query t.device s.handle with
        | Some _ -> acc + 1
        | None -> acc)
      0 t.spawned
  in
  t.spawned <- [];
  n

(** Convenience: process a trace while stepping the reactive loop every
    [step_every] packets (default: once per 1000). *)
let process_trace ?(step_every = 1000) t trace =
  let count = ref 0 in
  Newton_trace.Gen.iter
    (fun pkt ->
      Newton.Device.process_packet t.device pkt;
      incr count;
      if !count mod step_every = 0 then ignore (step t))
    trace;
  ignore (step t)
