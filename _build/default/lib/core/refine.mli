(** Iterative prefix refinement — Sonata's dynamic-scope technique run
    with Newton's rule-level reconfiguration: a coarse prefix query
    whose crossing prefixes spawn finer-grained queries scoped to them,
    each install a millisecond rule operation instead of a reload. *)

open Newton_query

type t

(** Start a refinement over [field] with key prefix lengths [levels]
    (strictly coarse to fine, each in [1,32]) and per-window threshold
    [th]; the root query installs immediately.
    @raise Invalid_argument on empty/unordered/out-of-range levels. *)
val create :
  ?base_id:int -> Newton.Device.t -> field:Newton_packet.Field.t ->
  levels:int list -> th:int -> t

(** Refinement queries installed so far (including the root). *)
val installs : t -> int

(** Cumulative rule-install time, seconds. *)
val install_latency : t -> float

(** Finest-level detections so far. *)
val results : t -> Report.t list

(** Scan new reports and refine crossing prefixes one level; returns
    how many queries this step installed. *)
val step : t -> int

(** Remove every refinement query. *)
val retract_all : t -> unit

(** Drive a trace, stepping every [step_every] packets (default 500)
    and once at the end. *)
val process_trace : ?step_every:int -> t -> Newton_trace.Gen.t -> unit
