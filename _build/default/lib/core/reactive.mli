(** Reactive intents: automatic runtime drill-down.  A {!rule} binds a
    trigger query to a template; when the trigger reports a new key, the
    template instantiates and installs at runtime (milliseconds, no
    interruption), up to a per-rule budget. *)

open Newton_query

type rule = {
  trigger_id : int;              (** query id whose reports trigger *)
  template : Report.t -> Ast.t;  (** refined query for a report *)
  max_instances : int;
}

type spawned = {
  rule_trigger : int;
  trigger_keys : int array;
  handle : Newton.handle;
  query : Ast.t;
}

type t

val create : Newton.Device.t -> rule list -> t

val device : t -> Newton.Device.t

(** Drill-downs spawned so far, oldest first. *)
val spawned : t -> spawned list

(** Scan reports since the last step and install drill-downs for new
    trigger keys; returns what was spawned with install latencies. *)
val step : t -> (Ast.t * float) list

(** Remove every spawned instance; returns how many were removed. *)
val retract_all : t -> int

(** Process a trace, stepping the reactive loop every [step_every]
    packets (default 1000) and once at the end. *)
val process_trace : ?step_every:int -> t -> Newton_trace.Gen.t -> unit
