lib/core/reactive.ml: Ast List Newton Newton_query Newton_trace Report
