lib/core/refine.ml: Array Ast List Newton Newton_packet Newton_query Newton_trace Printf Report
