lib/core/reactive.mli: Ast Newton Newton_query Newton_trace Report
