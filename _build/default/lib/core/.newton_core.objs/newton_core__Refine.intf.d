lib/core/refine.mli: Newton Newton_packet Newton_query Newton_trace Report
