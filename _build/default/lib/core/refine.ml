(** Iterative prefix refinement — Sonata's dynamic-scope technique,
    executed with Newton's rule-level reconfiguration.

    To find heavy hitters at host granularity over a huge address
    space with little data-plane state, start with a query keyed on a
    coarse prefix of the field (e.g. /8); whenever a prefix crosses the
    threshold, install a refined query scoped to that prefix at the next
    level (/16, /24, ...) — narrowing the monitored scope window by
    window.

    Sonata performs this refinement by recompiling P4 programs (a reload
    per level, §2.2); here every step is a millisecond rule install,
    which is exactly the case the paper's §1 makes for on-demand
    queries.  The refinement bench quantifies the difference. *)

open Newton_query

type level_handle = {
  lh_prefix : int;      (** masked field value this query is scoped to *)
  lh_len : int;         (** prefix length of the scope (0 at the root) *)
  lh_next_len : int;    (** prefix length this query's keys use *)
  lh_handle : Newton.handle;
}

type t = {
  device : Newton.Device.t;
  field : Newton_packet.Field.t;
  levels : int list;    (** key prefix lengths, coarse to fine, e.g. [8;16;24;32] *)
  th : int;
  base_id : int;
  mutable active : level_handle list;
  mutable consumed : int;
  mutable installs : int;
  mutable install_latency : float; (** cumulative rule-install time *)
  mutable results : Report.t list; (** finest-level reports *)
}

let mask_of_len len = if len <= 0 then 0 else 0xFFFFFFFF lxor ((1 lsl (32 - len)) - 1)

(* The refinement query: scoped to [prefix]/[scope_len], keyed on
   [key_len]-bit prefixes of [field]. *)
let level_query t ~prefix ~scope_len ~key_len =
  let key = Ast.key ~mask:(mask_of_len key_len) t.field in
  let scope =
    if scope_len = 0 then []
    else
      [ Ast.Filter
          [ Ast.Cmp
              { field = t.field; mask = mask_of_len scope_len; op = Ast.Eq;
                value = prefix } ] ]
  in
  Ast.chain
    ~id:(t.base_id + key_len)
    ~name:(Printf.sprintf "refine_%d_%x" key_len prefix)
    ~description:"prefix refinement level"
    (scope
    @ [ Ast.Map [ key ];
        Ast.Reduce { keys = [ key ]; agg = Ast.Count };
        Ast.Filter [ Ast.result_gt t.th ];
        Ast.Map [ key ] ])

let install t ~prefix ~scope_len ~key_len =
  let q = level_query t ~prefix ~scope_len ~key_len in
  let handle, latency = Newton.Device.add_query t.device q in
  t.installs <- t.installs + 1;
  t.install_latency <- t.install_latency +. latency;
  t.active <-
    { lh_prefix = prefix; lh_len = scope_len; lh_next_len = key_len;
      lh_handle = handle }
    :: t.active

(** Start a refinement over [field] with key prefix lengths [levels]
    (coarse to fine) and per-window threshold [th]. *)
let create ?(base_id = 700) device ~field ~levels ~th =
  (match levels with
  | [] -> invalid_arg "Refine.create: need at least one level"
  | l ->
      if List.exists (fun x -> x < 1 || x > 32) l then
        invalid_arg "Refine.create: prefix lengths must be in [1,32]";
      if List.sort compare l <> l then
        invalid_arg "Refine.create: levels must be coarse to fine");
  let t =
    { device; field; levels; th; base_id; active = []; consumed = 0;
      installs = 0; install_latency = 0.0; results = [] }
  in
  install t ~prefix:0 ~scope_len:0 ~key_len:(List.hd levels);
  t

let installs t = t.installs
let install_latency t = t.install_latency

(** Finest-level detections so far. *)
let results t = List.rev t.results

let next_level t len =
  let rec go = function
    | a :: (b :: _ as rest) -> if a = len then Some b else go rest
    | _ -> None
  in
  go t.levels

(** Scan new reports; refine crossing prefixes one level down.  Returns
    how many refinements were installed by this step. *)
let step t =
  let reports = Newton.Device.reports t.device in
  let fresh = List.filteri (fun i _ -> i >= t.consumed) reports in
  t.consumed <- List.length reports;
  let spawned = ref 0 in
  List.iter
    (fun (r : Report.t) ->
      (* Is this one of our level queries? *)
      let level = r.Report.query_id - t.base_id in
      if List.mem level t.levels then begin
        let prefix = r.Report.keys.(0) in
        match next_level t level with
        | None ->
            (* finest level: a result *)
            t.results <- r :: t.results
        | Some finer ->
            let already =
              List.exists
                (fun lh -> lh.lh_prefix = prefix && lh.lh_len = level)
                t.active
            in
            if not already then begin
              install t ~prefix ~scope_len:level ~key_len:finer;
              incr spawned
            end
      end)
    fresh;
  !spawned

(** Remove every refinement query (including the root). *)
let retract_all t =
  List.iter (fun lh -> ignore (Newton.Device.remove_query t.device lh.lh_handle)) t.active;
  t.active <- []

(** Drive a whole trace, stepping after every [step_every] packets. *)
let process_trace ?(step_every = 500) t trace =
  let count = ref 0 in
  Newton_trace.Gen.iter
    (fun pkt ->
      Newton.Device.process_packet t.device pkt;
      incr count;
      if !count mod step_every = 0 then ignore (step t))
    trace;
  ignore (step t)
