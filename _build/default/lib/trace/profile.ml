(** Trace profiles — the synthetic stand-ins for the CAIDA and MAWI traces.

    The paper evaluates on one CAIDA (Chicago 2014) and one MAWI trace.
    Neither is redistributable, so we model their statistically relevant
    properties: flow-count scale, Zipfian flow-size skew, protocol mix and
    mean flow length.  The evaluation metrics we reproduce (monitoring
    messages per packet, sketch accuracy vs. memory) depend on exactly
    these properties, not on payload bytes.

    Profile parameters follow published characterisations: CAIDA backbone
    traces are TCP-dominated (~83 %) with heavy-tailed flow sizes; MAWI
    transit traces carry more UDP/DNS and shorter flows. *)

type t = {
  name : string;
  flows : int;            (** number of background flows *)
  zipf_exponent : float;  (** skew of flow-popularity distribution *)
  duration : float;       (** trace duration in seconds *)
  tcp_fraction : float;   (** fraction of flows that are TCP *)
  dns_fraction : float;   (** fraction of UDP flows that are DNS (port 53) *)
  mean_flow_pkts : float; (** mean packets per flow (Pareto-distributed) *)
  pareto_alpha : float;   (** flow-size tail index; smaller = heavier tail *)
  hosts : int;            (** size of the address pool *)
  complete_fraction : float; (** TCP flows that finish the FIN handshake *)
  burstiness : float;     (** 0 = flow arrivals uniform over the trace;
                              towards 1, arrivals concentrate into
                              on-periods (self-similar-ish load) *)
}

let caida_like =
  {
    name = "caida-like";
    flows = 20_000;
    zipf_exponent = 1.1;
    duration = 1.0;
    tcp_fraction = 0.83;
    dns_fraction = 0.25;
    mean_flow_pkts = 12.0;
    pareto_alpha = 1.3;
    hosts = 8_192;
    complete_fraction = 0.85;
    burstiness = 0.0;
  }

let mawi_like =
  {
    name = "mawi-like";
    flows = 20_000;
    zipf_exponent = 0.9;
    duration = 1.0;
    tcp_fraction = 0.62;
    dns_fraction = 0.55;
    mean_flow_pkts = 6.0;
    pareto_alpha = 1.6;
    hosts = 12_288;
    complete_fraction = 0.70;
    burstiness = 0.0;
  }

(** Scale the flow count (and address pool) of a profile, keeping the
    distributional shape; used to vary traffic volume in benchmarks. *)
let scale t factor =
  {
    t with
    flows = max 1 (int_of_float (float_of_int t.flows *. factor));
    hosts = max 16 (int_of_float (float_of_int t.hosts *. factor));
  }

let with_flows t flows = { t with flows }

(** Set the arrival burstiness, clamped to [0, 0.95]. *)
let with_burstiness t b = { t with burstiness = Float.max 0.0 (Float.min 0.95 b) }

let to_string t =
  Printf.sprintf "%s(flows=%d, tcp=%.0f%%, mean_pkts=%.1f)" t.name t.flows
    (100.0 *. t.tcp_fraction) t.mean_flow_pkts
