lib/trace/attack.ml: Field Newton_packet Newton_util Packet Printf
