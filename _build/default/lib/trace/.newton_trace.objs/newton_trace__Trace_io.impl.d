lib/trace/trace_io.ml: Array Buffer Bytes Field Fun Gen Int32 Int64 List Newton_packet Packet Printf Profile String
