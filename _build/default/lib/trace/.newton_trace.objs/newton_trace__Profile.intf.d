lib/trace/profile.mli:
