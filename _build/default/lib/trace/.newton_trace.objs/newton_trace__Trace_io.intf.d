lib/trace/trace_io.mli: Gen
