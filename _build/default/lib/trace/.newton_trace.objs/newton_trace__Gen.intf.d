lib/trace/gen.mli: Attack Newton_packet Packet Profile
