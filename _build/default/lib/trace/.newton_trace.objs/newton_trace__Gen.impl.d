lib/trace/gen.ml: Array Attack Field Float List Newton_packet Newton_util Packet Profile
