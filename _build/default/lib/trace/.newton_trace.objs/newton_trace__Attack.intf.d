lib/trace/attack.mli: Newton_packet Newton_util Packet
