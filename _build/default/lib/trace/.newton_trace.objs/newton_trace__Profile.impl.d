lib/trace/profile.ml: Float Printf
