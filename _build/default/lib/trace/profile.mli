(** Trace profiles — synthetic stand-ins for the CAIDA and MAWI traces,
    modelling the statistically relevant properties (flow-size skew,
    protocol mix, flow lengths) the evaluation metrics depend on. *)

type t = {
  name : string;
  flows : int;            (** number of background flows *)
  zipf_exponent : float;  (** flow-popularity skew *)
  duration : float;       (** trace duration, seconds *)
  tcp_fraction : float;   (** fraction of flows that are TCP *)
  dns_fraction : float;   (** fraction of UDP flows that are DNS *)
  mean_flow_pkts : float; (** mean packets per flow (Pareto) *)
  pareto_alpha : float;   (** flow-size tail index *)
  hosts : int;            (** address-pool size *)
  complete_fraction : float; (** TCP flows finishing the FIN handshake *)
  burstiness : float;     (** 0 = uniform flow arrivals; towards 1,
                              arrivals concentrate into on-periods *)
}

(** TCP-dominated backbone mix. *)
val caida_like : t

(** DNS/UDP-heavier transit mix with shorter flows. *)
val mawi_like : t

(** Scale flows and hosts, keeping the distributional shape. *)
val scale : t -> float -> t

val with_flows : t -> int -> t

(** Set arrival burstiness, clamped to [0, 0.95]. *)
val with_burstiness : t -> float -> t
val to_string : t -> string
