(** Trace serialization: save generated traces and replay them later —
    the role pcap files play for the real system. *)

exception Format_error of string

(** Write a trace to a file (binary, versioned). *)
val save : Gen.t -> string -> unit

(** Load a trace saved with {!save}; the profile name gains a
    ["loaded:"] prefix.
    @raise Format_error on bad magic, version, or truncation. *)
val load : string -> Gen.t
