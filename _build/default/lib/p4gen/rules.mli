(** Runtime table-rule generation: the control-plane entries that
    configure the emitted P4 program for one compiled query — what the
    Newton controller pushes instead of reloading a program. *)

type mtch =
  | M_exact of string * int
  | M_ternary of string * int * int (** field, value, mask *)
  | M_range of string * int * int   (** field, lo, hi *)

type entry = {
  table : string;
  matches : mtch list;
  action : string;
  params : (string * string) list;
  priority : int;
}

(** One [newton_init] entry per branch plus one entry per module slot;
    branch b is assigned traffic class [class_id + b]. *)
val entries : ?class_id:int -> Newton_compiler.Compose.t -> entry list

(** Render as a JSON array, one entry per line. *)
val to_json : entry list -> string
