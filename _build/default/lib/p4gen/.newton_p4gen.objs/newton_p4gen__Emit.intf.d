lib/p4gen/emit.mli: Newton_dataplane Newton_packet
