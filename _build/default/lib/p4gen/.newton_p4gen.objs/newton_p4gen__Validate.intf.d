lib/p4gen/validate.mli: Emit Hashtbl Newton_compiler
