lib/p4gen/validate.ml: Emit Hashtbl List Newton_util Option Printf Rules String
