lib/p4gen/rules.ml: Array Buffer Compose Emit Field Ir List Newton_compiler Newton_packet Newton_query Printf String
