lib/p4gen/emit.ml: Buffer Field List Newton_dataplane Newton_packet Printf String
