lib/p4gen/rules.mli: Newton_compiler
