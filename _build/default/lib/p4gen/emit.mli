(** P4₁₆ program generation for the Newton module layout — the one-time
    program loaded at initialization; everything afterwards is table
    rules ({!Rules}). Targets v1model for readability/portability. *)

(** Layout parameters of the emitted pipeline. *)
type layout = {
  stages : int;           (** stages carrying Newton modules *)
  registers : int;        (** registers per state-bank array *)
  rules_per_table : int;  (** capacity of each module table *)
}

val default_layout : layout

(** EtherType carrying the SP header between Newton hops. *)
val sp_ethertype : int

(** Stable table naming scheme shared with {!Rules}. *)
val table_name : stage:int -> kind:Newton_dataplane.Module_cost.kind -> set:int -> string

val register_name : stage:int -> set:int -> string

(** Metadata field name of a (set, global field) operation key. *)
val key_field : set:int -> Newton_packet.Field.t -> string

(** Emit the complete program.
    @raise Invalid_argument on non-positive layout sizes. *)
val program : ?layout:layout -> unit -> string
