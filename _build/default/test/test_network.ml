(** Tests for Newton_network: topologies, routing, failures. *)

open Newton_network

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ---------------- Topologies ---------------- *)

let test_linear_structure () =
  let t = Topo.linear 3 in
  checki "3 switches" 3 (Topo.num_switches t);
  checki "2 hosts" 2 (Topo.num_hosts t);
  checki "2 switch links" 2 (List.length (Topo.links t));
  checki "host 0 on switch 0" 0 (Topo.host_switch t (Topo.num_switches t));
  checki "host 1 on switch 2" 2 (Topo.host_switch t (Topo.num_switches t + 1))

let test_linear_single_switch () =
  let t = Topo.linear 1 in
  checki "both hosts on sw0" 0 (Topo.host_switch t 1);
  checki "no switch links" 0 (List.length (Topo.links t))

let test_fat_tree_counts () =
  let k = 4 in
  let t = Topo.fat_tree k in
  (* (k/2)^2 core + k*k/2 agg + k*k/2 edge = 4 + 8 + 8 = 20 *)
  checki "k=4 has 20 switches" 20 (Topo.num_switches t);
  checki "hosts = edges * hosts_per_edge" 16 (Topo.num_hosts t);
  (* links: core-agg k^2*(k/2)/... each pod: (k/2)^2 agg-core + (k/2)^2 agg-edge *)
  checki "k=4 link count" (4 * (4 + 4)) (List.length (Topo.links t))

let test_fat_tree_degrees () =
  let t = Topo.fat_tree 4 in
  (* Core switches connect to one agg per pod: degree k. *)
  List.iter
    (fun c -> checki "core degree = k" 4 (Topo.degree t c))
    [ 0; 1; 2; 3 ]

let test_fat_tree_rejects_odd () =
  checkb "odd k rejected" true
    (try ignore (Topo.fat_tree 3); false with Invalid_argument _ -> true)

let test_isp_structure () =
  let t = Topo.isp () in
  checki "25 cities" 25 (Topo.num_switches t);
  checki "one host per city" 25 (Topo.num_hosts t);
  checkb "connected" true
    (let r = Route.create t in
     let d = Route.distances r 0 in
     Array.for_all (fun x -> x < max_int) (Array.sub d 0 (Topo.num_switches t)))

let test_edge_switches () =
  let t = Topo.fat_tree 4 in
  (* Only edge-layer switches have hosts. *)
  checki "8 edge switches" 8 (List.length (Topo.edge_switches t))

let test_build_rejects_bad_edge () =
  checkb "bad edge rejected" true
    (try
       ignore (Topo.build ~name:"x" ~num_switches:1 ~num_hosts:0 [ (0, 5) ] []);
       false
     with Invalid_argument _ -> true)

(* ---------------- Routing ---------------- *)

let test_shortest_path_linear () =
  let t = Topo.linear 3 in
  let r = Route.create t in
  let h0 = Topo.num_switches t and h1 = Topo.num_switches t + 1 in
  match Route.switch_path r ~src_host:h0 ~dst_host:h1 with
  | Some path -> Alcotest.(check (list int)) "traverses the chain" [ 0; 1; 2 ] path
  | None -> Alcotest.fail "disconnected"

let test_hop_count () =
  let t = Topo.linear 4 in
  let r = Route.create t in
  let h0 = Topo.num_switches t and h1 = Topo.num_switches t + 1 in
  Alcotest.(check (option int)) "4 switch hops" (Some 4)
    (Route.hop_count r ~src_host:h0 ~dst_host:h1)

let test_path_same_node () =
  let t = Topo.linear 2 in
  let r = Route.create t in
  Alcotest.(check (option (list int))) "self path" (Some [ 0 ]) (Route.shortest_path r ~src:0 ~dst:0)

let test_ecmp_spreads_flows () =
  let t = Topo.fat_tree 4 in
  let r = Route.create t in
  let hosts = Topo.hosts t in
  let h0 = List.nth hosts 0 in
  (* a host in another pod, so paths cross the core with ECMP choice *)
  let h_far = List.nth hosts (Topo.num_hosts t - 1) in
  let paths =
    List.init 32 (fun fh -> Route.switch_path ~flow_hash:fh r ~src_host:h0 ~dst_host:h_far)
  in
  let distinct = List.sort_uniq compare paths in
  checkb "ECMP uses multiple paths" true (List.length distinct > 1);
  List.iter
    (fun p ->
      match p with
      | Some p -> checki "all shortest (5 hops inter-pod)" 5 (List.length p)
      | None -> Alcotest.fail "disconnected")
    paths

let test_failure_reroutes () =
  let t = Topo.linear 3 in
  let r = Route.create t in
  Route.fail_link r (0, 1);
  let h0 = Topo.num_switches t and h1 = Topo.num_switches t + 1 in
  Alcotest.(check (option (list int))) "chain cut disconnects" None
    (Route.switch_path r ~src_host:h0 ~dst_host:h1);
  Route.repair_link r (0, 1);
  checkb "repair restores" true
    (Route.switch_path r ~src_host:h0 ~dst_host:h1 <> None)

let test_failure_reroutes_fat_tree () =
  let t = Topo.fat_tree 4 in
  let r = Route.create t in
  let hosts = Topo.hosts t in
  let h0 = List.nth hosts 0 and h1 = List.nth hosts (Topo.num_hosts t - 1) in
  let before = Option.get (Route.switch_path ~flow_hash:3 r ~src_host:h0 ~dst_host:h1) in
  (* Fail the first switch-switch link of the current path. *)
  (match before with
  | a :: b :: _ -> Route.fail_link r (a, b)
  | _ -> Alcotest.fail "path too short");
  let after = Option.get (Route.switch_path ~flow_hash:3 r ~src_host:h0 ~dst_host:h1) in
  checkb "rerouted" true (before <> after);
  (* The failed link must not appear in the new path. *)
  let rec has_link = function
    | a :: (b :: _ as rest) -> Route.is_failed r (a, b) || has_link rest
    | _ -> false
  in
  checkb "avoids failed link" false (has_link after)

let test_all_shortest_paths () =
  let t = Topo.fat_tree 4 in
  let r = Route.create t in
  (* Two edge switches in the same pod have (k/2) 2-hop paths via agg. *)
  let e1 = 4 + 8 and e2 = 4 + 8 + 1 in
  let paths = Route.all_shortest_paths r ~src:e1 ~dst:e2 in
  checki "k/2 equal-cost paths" 2 (List.length paths)

let test_all_paths_bounded () =
  let t = Topo.linear 3 in
  let r = Route.create t in
  let paths = Route.all_paths_bounded r ~src:0 ~dst:2 ~max_hops:5 in
  checki "single simple path on a chain" 1 (List.length paths);
  checki "no path within 1 hop" 0 (List.length (Route.all_paths_bounded r ~src:0 ~dst:2 ~max_hops:1))

let test_distances () =
  let t = Topo.linear 4 in
  let r = Route.create t in
  let d = Route.distances r 0 in
  checki "self" 0 d.(0);
  checki "3 away" 3 d.(3)

let test_failed_links_listing () =
  let t = Topo.linear 3 in
  let r = Route.create t in
  Route.fail_link r (1, 0);
  checkb "normalised and listed" true (Route.failed_links r = [ (0, 1) ]);
  checkb "is_failed in both orders" true (Route.is_failed r (1, 0));
  Route.clear_failures r;
  checkb "cleared" true (Route.failed_links r = [])

let test_waxman_connected () =
  for seed = 1 to 10 do
    let t = Topo.waxman ~switches:20 ~seed () in
    let r = Route.create t in
    let d = Route.distances r 0 in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d connected" seed)
      true
      (Array.for_all (fun x -> x < max_int) (Array.sub d 0 (Topo.num_switches t)))
  done

let test_waxman_deterministic () =
  let a = Topo.waxman ~switches:15 ~seed:3 () in
  let b = Topo.waxman ~switches:15 ~seed:3 () in
  Alcotest.(check (list (pair int int))) "same seed, same graph"
    (Topo.links a) (Topo.links b);
  let c = Topo.waxman ~switches:15 ~seed:4 () in
  checkb "different seed differs" true (Topo.links a <> Topo.links c)

let test_waxman_hosts () =
  let t = Topo.waxman ~switches:12 ~seed:5 () in
  checki "one host per switch" 12 (Topo.num_hosts t);
  checki "every switch is an edge" 12 (List.length (Topo.edge_switches t))

let qcheck_waxman_placement_coverage =
  QCheck.Test.make ~count:20
    ~name:"placement covers shortest paths on random graphs"
    QCheck.(pair (int_range 1 10000) (int_range 2 4))
    (fun (seed, per) ->
      let topo = Topo.waxman ~switches:12 ~seed () in
      let compiled =
        Newton_compiler.Compose.compile (Newton_query.Catalog.q1 ())
      in
      let p =
        Newton_controller.Placement.place ~stages_per_switch:(per * 2) ~topo
          compiled
      in
      let route = Route.create topo in
      let hosts = Array.of_list (Topo.hosts topo) in
      let ok = ref true in
      Array.iteri
        (fun i h1 ->
          if i < 5 then
            Array.iteri
              (fun j h2 ->
                if j < 5 && h1 <> h2 then
                  match Route.switch_path route ~src_host:h1 ~dst_host:h2 with
                  | Some path ->
                      if not (Newton_controller.Placement.covers p path) then
                        ok := false
                  | None -> ())
              hosts)
        hosts;
      !ok)

let suite =
  [
    ("linear structure", `Quick, test_linear_structure);
    ("linear single switch", `Quick, test_linear_single_switch);
    ("fat tree counts", `Quick, test_fat_tree_counts);
    ("fat tree degrees", `Quick, test_fat_tree_degrees);
    ("fat tree rejects odd", `Quick, test_fat_tree_rejects_odd);
    ("isp structure", `Quick, test_isp_structure);
    ("edge switches", `Quick, test_edge_switches);
    ("build rejects bad edge", `Quick, test_build_rejects_bad_edge);
    ("shortest path linear", `Quick, test_shortest_path_linear);
    ("hop count", `Quick, test_hop_count);
    ("path same node", `Quick, test_path_same_node);
    ("ecmp spreads flows", `Quick, test_ecmp_spreads_flows);
    ("failure disconnects chain", `Quick, test_failure_reroutes);
    ("failure reroutes fat tree", `Quick, test_failure_reroutes_fat_tree);
    ("all shortest paths", `Quick, test_all_shortest_paths);
    ("all paths bounded", `Quick, test_all_paths_bounded);
    ("distances", `Quick, test_distances);
    ("failed links listing", `Quick, test_failed_links_listing);
    ("waxman connected", `Quick, test_waxman_connected);
    ("waxman deterministic", `Quick, test_waxman_deterministic);
    ("waxman hosts", `Quick, test_waxman_hosts);
    QCheck_alcotest.to_alcotest qcheck_waxman_placement_coverage;
  ]
