(** Tests for Newton_baselines: export models of TurboFlow, *Flow,
    FlowRadar, SCREAM, and the Sonata reload semantics. *)

open Newton_packet
open Newton_baselines

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let pkt ?(ts = 0.01) ?(src = 1) ?(dst = 2) ?(sport = 1000) ?(dport = 80) () =
  Packet.make ~ts ~src_ip:src ~dst_ip:dst ~proto:6 ~src_port:sport ~dst_port:dport ()

(* ---------------- TurboFlow ---------------- *)

let test_turboflow_one_record_per_flow () =
  let t = Turboflow.create ~cache_size:4096 () in
  for f = 1 to 50 do
    for _ = 1 to 10 do
      Turboflow.process t (pkt ~src:f ())
    done
  done;
  Turboflow.finish t;
  checki "one record per flow" 50 (Turboflow.messages t);
  checki "packets counted" 500 (Turboflow.packets t)

let test_turboflow_evictions_on_collision () =
  let t = Turboflow.create ~cache_size:1 () in
  Turboflow.process t (pkt ~src:1 ());
  Turboflow.process t (pkt ~src:2 ());
  Turboflow.process t (pkt ~src:1 ());
  checkb "collisions evict" true (Turboflow.evictions t >= 2)

let test_turboflow_interval_flush () =
  let t = Turboflow.create ~interval:0.1 () in
  Turboflow.process t (pkt ~ts:0.01 ());
  Turboflow.process t (pkt ~ts:0.15 ());
  (* window rollover flushed the first record *)
  checki "flushed at interval" 1 (Turboflow.messages t);
  Turboflow.finish t;
  checki "final flush" 2 (Turboflow.messages t)

(* ---------------- *Flow ---------------- *)

let test_starflow_gpv_batching () =
  let t = Starflow.create ~gpv_len:4 () in
  for _ = 1 to 12 do
    Starflow.process t (pkt ())
  done;
  checki "12 packets = 3 full GPVs" 3 (Starflow.messages t)

let test_starflow_eviction_ships_partial () =
  let t = Starflow.create ~cache_size:1 ~gpv_len:8 () in
  Starflow.process t (pkt ~src:1 ());
  Starflow.process t (pkt ~src:2 ());
  checki "eviction ships partial GPV" 1 (Starflow.messages t)

let test_starflow_finish_flushes () =
  let t = Starflow.create ~gpv_len:8 () in
  Starflow.process t (pkt ());
  Starflow.finish t;
  checki "trailing partial shipped" 1 (Starflow.messages t)

let test_starflow_overhead_scale () =
  (* *Flow's message count is proportional to packets/gpv_len — the
     "overheads proportional to traffic volume" claim. *)
  let t = Starflow.create ~gpv_len:4 () in
  for i = 1 to 4000 do
    Starflow.process t (pkt ~src:(i mod 64) ())
  done;
  let ratio = float_of_int (Starflow.messages t) /. 4000.0 in
  checkb "~1/gpv_len of packets" true (ratio > 0.2 && ratio <= 0.3)

(* ---------------- FlowRadar ---------------- *)

let test_flowradar_fixed_export_per_window () =
  let t = Flowradar.create ~array_size:4096 ~cells_per_msg:64 ~interval:0.1 () in
  for i = 1 to 1000 do
    Flowradar.process t (pkt ~ts:0.01 ~src:i ())
  done;
  checki "no export mid-window" 0 (Flowradar.messages t);
  Flowradar.process t (pkt ~ts:0.15 ());
  checki "one window export = cells/batch" 64 (Flowradar.messages t)

let test_flowradar_overhead_independent_of_traffic () =
  let run n =
    let t = Flowradar.create ~interval:0.1 () in
    for i = 1 to n do
      Flowradar.process t (pkt ~ts:0.01 ~src:i ())
    done;
    Flowradar.finish t;
    Flowradar.messages t
  in
  checki "same messages for 10x traffic" (run 100) (run 1000)

(* ---------------- SCREAM ---------------- *)

let test_scream_periodic_export () =
  let t = Scream.create ~width:2048 ~depth:3 ~counters_per_msg:64 ~interval:0.1 () in
  Scream.process t (pkt ~ts:0.01 ());
  Scream.process t (pkt ~ts:0.15 ());
  checki "sketch exported at window" (2048 * 3 / 64) (Scream.messages t)

(* ---------------- Sonata ---------------- *)

let compile = Newton_compiler.Compose.compile

let test_sonata_install_causes_outage () =
  let s = Sonata.create () in
  let outage = Sonata.install_query s (compile (Newton_query.Catalog.q1 ())) in
  checkb "seconds of outage" true (outage > 5.0);
  checki "one outage recorded" 1 (List.length (Sonata.outages s))

let test_sonata_outage_linear_in_entries () =
  let small = Sonata.create ~fwd_entries:10_000 () in
  let large = Sonata.create ~fwd_entries:60_000 () in
  let o1 = Sonata.install_query small (compile (Newton_query.Catalog.q1 ())) in
  let o2 = Sonata.install_query large (compile (Newton_query.Catalog.q1 ())) in
  checkb "larger tables, longer outage" true (o2 > o1 +. 15.0)

let test_sonata_reload_loses_state () =
  let s = Sonata.create () in
  let _ = Sonata.install_query s (compile (Newton_query.Catalog.q1 ~th:5 ())) in
  (* Accumulate state just below threshold... *)
  for i = 1 to 5 do
    Sonata.process_packet s
      (Packet.make ~ts:0.01 ~src_ip:i ~dst_ip:9 ~proto:6
         ~tcp_flags:Field.Tcp_flag.syn ())
  done;
  (* ...then an update reloads the pipeline and wipes it. *)
  let _ = Sonata.install_query s (compile (Newton_query.Catalog.q4 ())) in
  Sonata.process_packet s
    (Packet.make ~ts:0.02 ~src_ip:6 ~dst_ip:9 ~proto:6 ~tcp_flags:Field.Tcp_flag.syn ());
  checki "counter restarted, no report" 0 (Sonata.message_count s)

let test_sonata_queries_survive_reload () =
  let s = Sonata.create () in
  let _ = Sonata.install_query s (compile (Newton_query.Catalog.q1 ~th:5 ())) in
  let _ = Sonata.install_query s (compile (Newton_query.Catalog.q4 ())) in
  (* Both queries run after the second reload. *)
  for i = 1 to 10 do
    Sonata.process_packet s
      (Packet.make ~ts:0.01 ~src_ip:i ~dst_ip:9 ~proto:6
         ~tcp_flags:Field.Tcp_flag.syn ())
  done;
  checkb "q1 fires after reload" true (Sonata.message_count s >= 1)

let test_sonata_remove_query () =
  let s = Sonata.create () in
  let c = compile (Newton_query.Catalog.q1 ()) in
  let _ = Sonata.install_query s c in
  let _ = Sonata.remove_query s c in
  checki "two outages (install+remove)" 2 (List.length (Sonata.outages s));
  checkb "total outage accumulates" true (Sonata.total_outage s > 10.0)

let suite =
  [
    ("turboflow one record per flow", `Quick, test_turboflow_one_record_per_flow);
    ("turboflow evictions", `Quick, test_turboflow_evictions_on_collision);
    ("turboflow interval flush", `Quick, test_turboflow_interval_flush);
    ("starflow gpv batching", `Quick, test_starflow_gpv_batching);
    ("starflow eviction ships partial", `Quick, test_starflow_eviction_ships_partial);
    ("starflow finish flushes", `Quick, test_starflow_finish_flushes);
    ("starflow overhead scale", `Quick, test_starflow_overhead_scale);
    ("flowradar fixed export", `Quick, test_flowradar_fixed_export_per_window);
    ("flowradar traffic-independent", `Quick, test_flowradar_overhead_independent_of_traffic);
    ("scream periodic export", `Quick, test_scream_periodic_export);
    ("sonata install causes outage", `Quick, test_sonata_install_causes_outage);
    ("sonata outage linear", `Quick, test_sonata_outage_linear_in_entries);
    ("sonata reload loses state", `Quick, test_sonata_reload_loses_state);
    ("sonata queries survive reload", `Quick, test_sonata_queries_survive_reload);
    ("sonata remove query", `Quick, test_sonata_remove_query);
  ]
