(** Tests for the textual query DSL (lexer + parser). *)

open Newton_packet
open Newton_query
open Newton_query.Ast

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let parse = Parser.parse

(* ---------------- Lexer ---------------- *)

let test_lex_basic () =
  let toks = Lexer.tokenize "filter(a == 1)" in
  checki "token count" 7 (List.length toks) (* incl EOF *)

let test_lex_operators () =
  let toks = Lexer.tokenize "== != > >= < <= | || => & ," in
  Alcotest.(check (list string)) "all operators"
    [ "=="; "!="; ">"; ">="; "<"; "<="; "|"; "||"; "=>"; "&"; ","; "<eof>" ]
    (List.map Lexer.token_to_string toks)

let test_lex_hex () =
  match Lexer.tokenize "0x1F" with
  | [ Lexer.INT 31; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "hex literal"

let test_lex_ip () =
  match Lexer.tokenize "10.200.0.5" with
  | [ Lexer.IP ip; Lexer.EOF ] -> checki "ip value" 0x0AC80005 ip
  | _ -> Alcotest.fail "ip literal"

let test_lex_dotted_field () =
  match Lexer.tokenize "tcp.flags" with
  | [ Lexer.IDENT "tcp"; Lexer.DOT; Lexer.IDENT "flags"; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "dotted field"

let test_lex_rejects_garbage () =
  checkb "rejects @" true
    (try ignore (Lexer.tokenize "map(@)"); false with Lexer.Lex_error _ -> true)

let test_lex_amp_and_double_amp () =
  match Lexer.tokenize "a && b & 1" with
  | [ Lexer.IDENT "a"; Lexer.AMP; Lexer.IDENT "b"; Lexer.AMP; Lexer.INT 1; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "&& and & both lex to AMP"

(* ---------------- Parser: primitives ---------------- *)

let test_parse_filter_eq () =
  let q = parse "filter(proto == udp) | map(dip)" in
  match List.hd q.branches with
  | Filter [ Cmp { field = Field.Proto; op = Eq; value = 17; _ } ] :: _ -> ()
  | _ -> Alcotest.fail "filter shape"

let test_parse_filter_aliases () =
  let q = parse "filter(tcp.flags == syn) | map(dip)" in
  match List.hd q.branches with
  | Filter [ Cmp { field = Field.Tcp_flags; value = 2; _ } ] :: _ -> ()
  | _ -> Alcotest.fail "syn alias"

let test_parse_filter_masked () =
  let q = parse "filter(tcp.flags & 0x1 == 1) | map(dip)" in
  match List.hd q.branches with
  | Filter [ Cmp { mask = 1; value = 1; op = Eq; _ } ] :: _ -> ()
  | _ -> Alcotest.fail "masked predicate"

let test_parse_filter_conjunction () =
  let q = parse "filter(proto == tcp && dport == 22) | map(dip)" in
  (match List.hd q.branches with
  | Filter preds :: _ -> checki "two predicates" 2 (List.length preds)
  | _ -> Alcotest.fail "shape");
  (* comma also works as a separator *)
  let q2 = parse "filter(proto == tcp, dport == 22) | map(dip)" in
  match List.hd q2.branches with
  | Filter preds :: _ -> checki "comma separator" 2 (List.length preds)
  | _ -> Alcotest.fail "shape"

let test_parse_filter_ip_literal () =
  let q = parse "filter(dip == 10.200.0.5) | map(sip)" in
  match List.hd q.branches with
  | Filter [ Cmp { field = Field.Dst_ip; value = 0x0AC80005; _ } ] :: _ -> ()
  | _ -> Alcotest.fail "ip literal predicate"

let test_parse_map_keys () =
  let q = parse "map(sip, dport)" in
  match List.hd q.branches with
  | [ Map [ k1; k2 ] ] ->
      checkb "sip" true (k1.field = Field.Src_ip);
      checkb "dport" true (k2.field = Field.Dst_port)
  | _ -> Alcotest.fail "map keys"

let test_parse_key_mask () =
  let q = parse "map(dip & 0xFFFFFF00)" in
  match List.hd q.branches with
  | [ Map [ k ] ] -> checki "prefix mask" 0xFFFFFF00 k.mask
  | _ -> Alcotest.fail "masked key"

let test_parse_distinct () =
  let q = parse "distinct(sip, dport) | map(sip) | reduce(sip, count)" in
  match List.hd q.branches with
  | Distinct ks :: _ -> checki "two keys" 2 (List.length ks)
  | _ -> Alcotest.fail "distinct"

let test_parse_reduce_aggs () =
  let count = parse "reduce(dip, count)" in
  (match List.hd count.branches with
  | [ Reduce { agg = Count; _ } ] -> ()
  | _ -> Alcotest.fail "count agg");
  let sum = parse "reduce(dip, sum payload_len)" in
  (match List.hd sum.branches with
  | [ Reduce { agg = Sum_field Field.Payload_len; _ } ] -> ()
  | _ -> Alcotest.fail "sum agg");
  let mx = parse "reduce(dip, max len)" in
  match List.hd mx.branches with
  | [ Reduce { agg = Max_field Field.Pkt_len; _ } ] -> ()
  | _ -> Alcotest.fail "max agg"

let test_parse_threshold () =
  let q = parse "reduce(dip, count) | filter(count > 30) | map(dip)" in
  match List.hd q.branches with
  | [ _; Filter [ Result_cmp { op = Gt; value = 30 } ]; _ ] -> ()
  | _ -> Alcotest.fail "threshold filter"

(* ---------------- Parser: whole queries ---------------- *)

let test_parse_q1_equivalent () =
  let q =
    parse
      "filter(proto == tcp && tcp.flags == syn) | map(dip) | reduce(dip, \
       count) | filter(count > 30) | map(dip)"
  in
  checkb "valid" true (is_valid q);
  (* Same structure as the catalog's Q1. *)
  let q1 = Catalog.q1 ~th:30 () in
  checki "same primitive count" (num_primitives q1) (num_primitives q)

let test_parse_combine_sub () =
  let q =
    parse
      "filter(tcp.flags == syn) | map(dip) | reduce(dip, count) || \
       filter(tcp.flags & 0x1 == fin) | map(dip) | reduce(dip, count) => \
       sub(count > 25)"
  in
  checki "two branches" 2 (List.length q.branches);
  match q.combine with
  | Some { op = Sub; threshold = Result_cmp { value = 25; _ } } -> ()
  | _ -> Alcotest.fail "combine clause"

let test_parse_combine_min_pair () =
  let base =
    "map(dip) | reduce(dip, count) || map(sip) | reduce(sip, count) => "
  in
  (match (parse (base ^ "min(count > 5)")).combine with
  | Some { op = Min; _ } -> ()
  | _ -> Alcotest.fail "min");
  match (parse (base ^ "pair(count > 5)")).combine with
  | Some { op = Pair; _ } -> ()
  | _ -> Alcotest.fail "pair"

let test_parsed_query_compiles_and_runs () =
  let q =
    Parser.parse ~id:77
      "filter(proto == udp && dport == 123) | map(dip, sip) | distinct(dip, \
       sip) | map(dip) | reduce(dip, count) | filter(count > 35) | map(dip)"
  in
  let trace =
    Newton_trace.Gen.generate
      ~attacks:
        [ Newton_trace.Attack.Udp_ddos
            { victim = Newton_trace.Attack.host_of 5; attackers = 80; pkts_per_attacker = 15 } ]
      ~seed:3
      (Newton_trace.Profile.with_flows Newton_trace.Profile.caida_like 500)
  in
  let device = Newton_core.Newton.Device.create () in
  let _ = Newton_core.Newton.Device.add_query device q in
  Newton_core.Newton.Device.process_trace device trace;
  checkb "parsed query detects the DDoS" true
    (Newton_core.Newton.Device.message_count device > 0)

let test_parse_errors () =
  let bad s =
    match Parser.parse_result s with Ok _ -> false | Error _ -> true
  in
  checkb "unknown primitive" true (bad "explode(dip)");
  checkb "unknown field" true (bad "map(dipp)");
  checkb "reduce without agg" true (bad "reduce(dip)");
  checkb "missing combine" true (bad "map(dip) || map(sip)");
  checkb "field threshold in combine" true
    (bad "map(dip) | reduce(dip, count) || map(sip) | reduce(sip, count) => sub(dip > 1)");
  checkb "trailing tokens" true (bad "map(dip) extra");
  checkb "count filter before reduce" true (bad "filter(count > 5) | map(dip)");
  checkb "empty input" true (bad "")

let test_parse_roundtrip_all_catalog () =
  (* Every catalog query re-expressed in the DSL parses to the same
     structure (primitive counts and combine ops). *)
  let dsl =
    [ (1, "filter(proto == tcp && tcp.flags == syn) | map(dip) | reduce(dip, count) | filter(count > 30) | map(dip)");
      (3, "map(sip, dip) | distinct(sip, dip) | map(sip) | reduce(sip, count) | filter(count > 60) | map(sip)");
      (6, "filter(proto == tcp && tcp.flags == syn) | map(dip) | reduce(dip, count) || filter(proto == tcp && tcp.flags & 0x1 == 1) | map(dip) | reduce(dip, count) => sub(count > 25)") ]
  in
  List.iter
    (fun (id, text) ->
      let q = parse text in
      let cat = Catalog.by_id id in
      checki (Printf.sprintf "Q%d primitive count" id) (num_primitives cat) (num_primitives q);
      checkb (Printf.sprintf "Q%d combine" id) true
        ((q.combine = None) = (cat.combine = None)))
    dsl

let qcheck_parser_total =
  QCheck.Test.make ~count:300 ~name:"parser: total on arbitrary printable input"
    QCheck.(string_gen_of_size Gen.(int_range 0 60) Gen.printable)
    (fun s ->
      match Parser.parse_result s with Ok _ | Error _ -> true)

let qcheck_lexer_total =
  QCheck.Test.make ~count:300 ~name:"lexer: total on arbitrary printable input"
    QCheck.(string_gen_of_size Gen.(int_range 0 80) Gen.printable)
    (fun s ->
      match Lexer.tokenize s with
      | _ -> true
      | exception Lexer.Lex_error _ -> true
      | exception Parser.Parse_error _ -> true)

(* ---------------- Printer (DSL round-trips) ---------------- *)

let test_printer_roundtrips_catalog () =
  List.iter
    (fun q ->
      let text = Printer.to_dsl q in
      let q' = Parser.parse ~window:q.window text in
      checkb
        (Printf.sprintf "Q%d branches survive print/parse" q.id)
        true
        (q'.branches = q.branches);
      checkb
        (Printf.sprintf "Q%d combine survives print/parse" q.id)
        true
        (q'.combine = q.combine))
    (Catalog.all () @ Catalog.extras ())

let test_printer_masked_keys () =
  let q = parse "map(dip & 0xFFFFFF00) | reduce(dip & 0xFFFFFF00, sum len) | filter(count > 5) | map(dip & 0xFFFFFF00)" in
  let q' = Parser.parse (Printer.to_dsl q) in
  checkb "masked keys round-trip" true (q'.branches = q.branches)

let suite =
  [
    ("lex basic", `Quick, test_lex_basic);
    ("lex operators", `Quick, test_lex_operators);
    ("lex hex", `Quick, test_lex_hex);
    ("lex ip", `Quick, test_lex_ip);
    ("lex dotted field", `Quick, test_lex_dotted_field);
    ("lex rejects garbage", `Quick, test_lex_rejects_garbage);
    ("lex amp variants", `Quick, test_lex_amp_and_double_amp);
    ("parse filter eq", `Quick, test_parse_filter_eq);
    ("parse filter aliases", `Quick, test_parse_filter_aliases);
    ("parse filter masked", `Quick, test_parse_filter_masked);
    ("parse filter conjunction", `Quick, test_parse_filter_conjunction);
    ("parse filter ip literal", `Quick, test_parse_filter_ip_literal);
    ("parse map keys", `Quick, test_parse_map_keys);
    ("parse key mask", `Quick, test_parse_key_mask);
    ("parse distinct", `Quick, test_parse_distinct);
    ("parse reduce aggs", `Quick, test_parse_reduce_aggs);
    ("parse threshold", `Quick, test_parse_threshold);
    ("parse q1 equivalent", `Quick, test_parse_q1_equivalent);
    ("parse combine sub", `Quick, test_parse_combine_sub);
    ("parse combine min/pair", `Quick, test_parse_combine_min_pair);
    ("parsed query compiles and runs", `Quick, test_parsed_query_compiles_and_runs);
    ("parse errors", `Quick, test_parse_errors);
    ("parse roundtrip catalog", `Quick, test_parse_roundtrip_all_catalog);
    ("printer roundtrips catalog", `Quick, test_printer_roundtrips_catalog);
    ("printer masked keys", `Quick, test_printer_masked_keys);
    QCheck_alcotest.to_alcotest qcheck_parser_total;
    QCheck_alcotest.to_alcotest qcheck_lexer_total;
  ]
