(** Tests for the per-switch FIB substrate (LPM forwarding tables,
    convergence effects). *)

open Newton_network

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let setup topo =
  let route = Route.create topo in
  let fib = Fib.create topo in
  ignore (Fib.recompute fib route);
  (route, fib)

let test_prefix_addressing () =
  checki "host 3 prefix" 0x0A000300 (Fib.host_prefix 3);
  checki "host addr inside prefix" 0x0A000305 (Fib.host_addr ~low:5 3);
  checkb "prefix match" true
    (Fib.host_addr ~low:42 3 land Fib.prefix_mask = Fib.host_prefix 3)

let test_linear_delivery () =
  let topo = Topo.linear 3 in
  let _, fib = setup topo in
  let h0 = Topo.num_switches topo and h1 = Topo.num_switches topo + 1 in
  match Fib.walk fib ~src_host:h0 ~dst_addr:(Fib.host_addr h1) with
  | Fib.Delivered path -> Alcotest.(check (list int)) "traverses the chain" [ 0; 1; 2 ] path
  | _ -> Alcotest.fail "expected delivery"

let test_entry_counts () =
  let topo = Topo.linear 3 in
  let _, fib = setup topo in
  (* 2 hosts x 3 switches, every switch can reach every host *)
  checki "total entries" 6 (Fib.total_entries fib);
  checki "per-switch entries" 2 (Fib.entries fib 1)

let test_fat_tree_all_pairs_delivered () =
  let topo = Topo.fat_tree 4 in
  let _, fib = setup topo in
  let hosts = Topo.hosts topo in
  List.iter
    (fun h1 ->
      List.iter
        (fun h2 ->
          if h1 <> h2 then
            match Fib.walk fib ~src_host:h1 ~dst_addr:(Fib.host_addr h2) with
            | Fib.Delivered _ -> ()
            | Fib.Blackholed p ->
                Alcotest.failf "blackholed at %s"
                  (String.concat "," (List.map string_of_int p))
            | Fib.Looped _ -> Alcotest.fail "looped")
        (List.filteri (fun i _ -> i < 6) hosts))
    (List.filteri (fun i _ -> i < 6) hosts)

let test_fib_path_lengths_shortest () =
  let topo = Topo.fat_tree 4 in
  let route, fib = setup topo in
  let hosts = Topo.hosts topo in
  let h1 = List.nth hosts 0 and h2 = List.nth hosts 15 in
  match Fib.walk fib ~src_host:h1 ~dst_addr:(Fib.host_addr h2) with
  | Fib.Delivered path ->
      let expected = Option.get (Route.hop_count route ~src_host:h1 ~dst_host:h2) in
      checki "FIB path is shortest" expected (List.length path)
  | _ -> Alcotest.fail "expected delivery"

let test_stale_fib_blackholes_until_reconvergence () =
  let topo = Topo.linear 3 in
  let route, fib = setup topo in
  let h0 = Topo.num_switches topo and h1 = Topo.num_switches topo + 1 in
  let dst = Fib.host_addr h1 in
  (* Fail the only link onward; the stale FIB still points into it —
     conceptually the packet is lost (the entry leads over a dead link).
     After recomputation the chain is cut, so the FIB drops the route. *)
  Route.fail_link route (1, 2);
  let g = Fib.generation fib in
  ignore (Fib.recompute fib route);
  checki "generation bumped" (g + 1) (Fib.generation fib);
  (match Fib.walk fib ~src_host:h0 ~dst_addr:dst with
  | Fib.Blackholed _ -> ()
  | _ -> Alcotest.fail "expected blackhole after losing the only path");
  Route.repair_link route (1, 2);
  ignore (Fib.recompute fib route);
  match Fib.walk fib ~src_host:h0 ~dst_addr:dst with
  | Fib.Delivered _ -> ()
  | _ -> Alcotest.fail "repair restores delivery"

let test_reroute_after_failure_fat_tree () =
  let topo = Topo.fat_tree 4 in
  let route, fib = setup topo in
  let hosts = Topo.hosts topo in
  let h1 = List.nth hosts 0 and h2 = List.nth hosts 15 in
  let dst = Fib.host_addr h2 in
  let before =
    match Fib.walk fib ~src_host:h1 ~dst_addr:dst with
    | Fib.Delivered p -> p
    | _ -> Alcotest.fail "expected delivery"
  in
  (match before with
  | a :: b :: _ -> Route.fail_link route (a, b)
  | _ -> Alcotest.fail "path too short");
  ignore (Fib.recompute fib route);
  (match Fib.walk fib ~src_host:h1 ~dst_addr:dst with
  | Fib.Delivered after ->
      checkb "rerouted" true (after <> before)
  | _ -> Alcotest.fail "fat-tree should survive one link failure");
  (* Resilient placement covers the new path too (Algorithm 2). *)
  let compiled = Newton_compiler.Compose.compile (Newton_query.Catalog.q1 ()) in
  let p =
    Newton_controller.Placement.place ~stages_per_switch:4 ~topo compiled
  in
  match Fib.walk fib ~src_host:h1 ~dst_addr:dst with
  | Fib.Delivered after ->
      checkb "rerouted path still covered" true (Newton_controller.Placement.covers p after)
  | _ -> Alcotest.fail "unexpected"

let test_sonata_reload_restores_measured_entries () =
  (* The FIB makes Fig. 10's x-axis a measured quantity: a switch's
     reload must restore exactly its installed forwarding entries. *)
  let topo = Topo.fat_tree 8 in
  let _, fib = setup topo in
  let sw0_entries = Fib.entries fib 0 in
  checkb "real forwarding population" true (sw0_entries > 0);
  let sonata = Newton_baselines.Sonata.create ~fwd_entries:sw0_entries () in
  let outage =
    Newton_baselines.Sonata.install_query sonata
      (Newton_compiler.Compose.compile (Newton_query.Catalog.q1 ()))
  in
  let expected =
    Newton_dataplane.Reconfig.reload_fixed
    +. (Newton_dataplane.Reconfig.reload_per_entry *. float_of_int sw0_entries)
  in
  checkb "outage tracks the measured entry count (within jitter)" true
    (abs_float (outage -. expected) < 0.5)

let suite =
  [
    ("prefix addressing", `Quick, test_prefix_addressing);
    ("linear delivery", `Quick, test_linear_delivery);
    ("entry counts", `Quick, test_entry_counts);
    ("fat tree all pairs delivered", `Quick, test_fat_tree_all_pairs_delivered);
    ("fib path lengths shortest", `Quick, test_fib_path_lengths_shortest);
    ("stale fib blackholes until reconvergence", `Quick, test_stale_fib_blackholes_until_reconvergence);
    ("reroute after failure (fat tree)", `Quick, test_reroute_after_failure_fat_tree);
    ("sonata reload restores measured entries", `Quick, test_sonata_reload_restores_measured_entries);
  ]
