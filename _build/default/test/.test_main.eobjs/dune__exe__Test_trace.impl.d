test/test_trace.ml: Alcotest Array Attack Field Gen List Newton_core Newton_packet Newton_query Newton_trace Newton_util Packet Profile String
