test/test_json.ml: Alcotest Json List Newton_compiler Newton_p4gen Newton_query Newton_util Option Printf QCheck QCheck_alcotest
