test/test_network.ml: Alcotest Array List Newton_compiler Newton_controller Newton_network Newton_query Option Printf QCheck QCheck_alcotest Route Topo
