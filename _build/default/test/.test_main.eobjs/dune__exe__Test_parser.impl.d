test/test_parser.ml: Alcotest Catalog Field Gen Lexer List Newton_core Newton_packet Newton_query Newton_trace Parser Printer Printf QCheck QCheck_alcotest
