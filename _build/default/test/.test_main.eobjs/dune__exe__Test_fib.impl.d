test/test_fib.ml: Alcotest Fib List Newton_baselines Newton_compiler Newton_controller Newton_dataplane Newton_network Newton_query Option Route String Topo
