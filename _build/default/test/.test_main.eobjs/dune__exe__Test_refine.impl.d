test/test_refine.ml: Alcotest Array Device Field List Newton_core Newton_dataplane Newton_trace Query Refine Report
