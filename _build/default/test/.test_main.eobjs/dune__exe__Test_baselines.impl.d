test/test_baselines.ml: Alcotest Field Flowradar List Newton_baselines Newton_compiler Newton_packet Newton_query Packet Scream Sonata Starflow Turboflow
