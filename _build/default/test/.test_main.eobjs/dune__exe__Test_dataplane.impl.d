test/test_dataplane.ml: Alcotest Module_cost Newton_dataplane Newton_util Reconfig Resource Stage Switch Table
