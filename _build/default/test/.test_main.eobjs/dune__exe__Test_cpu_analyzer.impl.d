test/test_cpu_analyzer.ml: Alcotest Array Catalog Cpu_analyzer List Newton_baselines Newton_core Newton_query Newton_trace Ref_eval Report Starflow
