test/test_validate.ml: Alcotest Emit Hashtbl List Newton_compiler Newton_p4gen Newton_query Printf String Validate
