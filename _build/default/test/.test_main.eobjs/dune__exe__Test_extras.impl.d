test/test_extras.ml: Alcotest Analyzer Array Ast Catalog Device List Newton_compiler Newton_core Newton_query Newton_runtime Newton_trace Packet Ref_eval Report
