test/test_trace_io.ml: Alcotest Array Attack Field Filename Gen In_channel List Newton_core Newton_packet Newton_query Newton_trace Packet Profile String Sys Trace_io
