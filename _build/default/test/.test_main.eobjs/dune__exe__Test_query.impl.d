test/test_query.ml: Alcotest Array Catalog Field List Newton_packet Newton_query Packet Ref_eval Report String
