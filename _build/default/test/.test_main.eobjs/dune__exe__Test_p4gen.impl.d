test/test_p4gen.ml: Alcotest Emit Hashtbl List Newton_compiler Newton_dataplane Newton_p4gen Newton_query Option Printf Rules String
