test/test_packet.ml: Alcotest Bytes Field Fivetuple List Newton_packet Packet QCheck QCheck_alcotest Sp_header
