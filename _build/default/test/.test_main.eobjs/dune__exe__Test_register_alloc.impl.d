test/test_register_alloc.ml: Alcotest Alu Gen Hash List Newton_dataplane Newton_sketch Option QCheck QCheck_alcotest Register_alloc Register_array
