test/test_series.ml: Alcotest Array Catalog List Newton_core Newton_query Newton_trace Report Series String
