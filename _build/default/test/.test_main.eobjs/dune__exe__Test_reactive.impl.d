test/test_reactive.ml: Alcotest Array Ast Catalog List Newton Newton_core Newton_dataplane Newton_packet Newton_query Newton_trace Reactive Report
