test/test_util.ml: Alcotest Array Float Fun List Newton_util Prng Stats String Tablefmt Zipf
