test/test_sketch.ml: Alcotest Alu Array Bloom Count_min Exact Gen Hash Hashtbl List Newton_sketch Newton_util Option QCheck QCheck_alcotest Register_array
