(** Tests for the GPV CPU analyzer: *Flow answers the same intents as
    Newton, at the cost of shipping and touching every packet. *)

open Newton_query
open Newton_baselines

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let trace () =
  Newton_trace.Gen.generate ~attacks:Newton_trace.Attack.default_suite ~seed:17
    (Newton_trace.Profile.with_flows Newton_trace.Profile.caida_like 800)

let test_gpv_reconstruction_lossless_for_tcp_fields () =
  let tr = trace () in
  let queries = [ Catalog.q1 (); Catalog.q4 () ] in
  let analyzer, _ = Cpu_analyzer.of_trace queries tr in
  (* Same ground truth as evaluating the raw trace: GPV features carry
     everything those queries read. *)
  let direct =
    List.concat_map (fun q -> Ref_eval.evaluate q (Newton_trace.Gen.packets tr)) queries
  in
  let via_gpv = Cpu_analyzer.results analyzer in
  let keyset rs =
    List.map (fun r -> (r.Report.query_id, r.Report.window, r.Report.keys)) rs
    |> List.sort_uniq compare
  in
  Alcotest.(check (list (triple int int (array int))))
    "GPV path = direct evaluation" (keyset direct) (keyset via_gpv)

let test_cpu_touches_every_packet () =
  let tr = trace () in
  let analyzer, sf = Cpu_analyzer.of_trace [ Catalog.q1 () ] tr in
  checki "every packet reaches the CPU" (Newton_trace.Gen.length tr)
    (Cpu_analyzer.cpu_packets analyzer);
  checki "gpvs = exporter messages" (Starflow.messages sf) (Cpu_analyzer.gpvs analyzer)

let test_overhead_contrast_with_newton () =
  let tr = trace () in
  let analyzer, sf = Cpu_analyzer.of_trace [ Catalog.q1 () ] tr in
  ignore analyzer;
  let device = Newton_core.Newton.Device.create () in
  let _ = Newton_core.Newton.Device.add_query device (Catalog.q1 ()) in
  Newton_core.Newton.Device.process_trace device tr;
  let newton_msgs = Newton_core.Newton.Device.message_count device in
  checkb "Newton exports orders of magnitude less" true
    (Starflow.messages sf > 50 * max 1 newton_msgs)

let test_same_detections_as_newton () =
  let tr = trace () in
  let q = Catalog.q4 () in
  let analyzer, _ = Cpu_analyzer.of_trace [ q ] tr in
  let device = Newton_core.Newton.Device.create () in
  let _ = Newton_core.Newton.Device.add_query device q in
  Newton_core.Newton.Device.process_trace device tr;
  let keys rs =
    List.map (fun r -> r.Report.keys) rs |> List.sort_uniq compare
  in
  let cpu_keys = keys (Cpu_analyzer.results analyzer) in
  let newton_keys = keys (Newton_core.Newton.Device.reports device) in
  (* The CPU path is exact; Newton's sketches can add false positives
     but never miss, so CPU detections are a subset. *)
  checkb "every exact detection also found by Newton" true
    (List.for_all (fun k -> List.mem k newton_keys) cpu_keys);
  checkb "scanner found by both" true
    (List.exists (fun k -> k.(0) = Newton_trace.Attack.host_of 2) cpu_keys)

let suite =
  [
    ("gpv reconstruction lossless", `Quick, test_gpv_reconstruction_lossless_for_tcp_fields);
    ("cpu touches every packet", `Quick, test_cpu_touches_every_packet);
    ("overhead contrast with newton", `Quick, test_overhead_contrast_with_newton);
    ("same detections as newton", `Quick, test_same_detections_as_newton);
  ]
