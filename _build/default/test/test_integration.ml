(** Cross-component integration scenarios. *)

open Newton_core.Newton

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let attack_trace ?(flows = 800) ?(seed = 61) () =
  Trace.generate ~attacks:Newton_trace.Attack.default_suite ~seed
    (Trace_profile.with_flows Trace_profile.caida_like flows)

(* 1. ISP-wide deployment surviving a backbone failure. *)
let test_isp_wide_monitoring_with_failure () =
  let topo = Topo.isp () in
  let net = Network.create topo in
  let _ = Network.add_query net (Catalog.q1 ~th:20 ()) in
  let _ = Network.add_query net (Catalog.q4 ~th:40 ()) in
  let trace = attack_trace () in
  Network.process_trace net trace;
  let before = Network.message_count net in
  checkb "both queries report across the backbone" true (before > 0);
  (* Fail the SF-LA link; California traffic reroutes via Seattle/SLC. *)
  Network.fail_link net (0, 1);
  Network.process_trace net trace;
  checkb "monitoring continues after the backbone failure" true
    (Network.message_count net > before)

(* 2. A single-switch network deployment equals the device engine. *)
let test_network_single_switch_equals_device () =
  let trace = attack_trace ~flows:500 () in
  let q = Catalog.q1 ~th:20 () in
  let device = Device.create () in
  let _ = Device.add_query device q in
  Device.process_trace device trace;
  let topo = Topo.linear 1 in
  let ctl = Newton_controller.Deploy.create topo in
  let _ = Newton_controller.Deploy.deploy ctl (Compiler.compile q) in
  let src = Topo.num_switches topo in
  Trace.iter
    (fun p -> Newton_controller.Deploy.process_packet ctl ~src_host:src ~dst_host:(src + 1) p)
    trace;
  let keyset rs =
    List.map (fun (r : Report.t) -> (r.Report.window, r.Report.keys)) rs
    |> List.sort_uniq compare
  in
  Alcotest.(check (list (pair int (array int))))
    "identical report identity sets"
    (keyset (Device.reports device))
    (keyset (Newton_controller.Deploy.all_reports ctl))

(* 3. Window length controls report granularity. *)
let test_window_length_scales_reports () =
  let trace = attack_trace ~flows:400 () in
  let run window =
    let q =
      Query.make ~window ~id:1 ~name:"w" ~description:""
        (Catalog.q1 ~th:10 ()).Query.branches
    in
    let d = Device.create () in
    let _ = Device.add_query d q in
    Device.process_trace d trace;
    Device.message_count d
  in
  let fine = run 0.05 and coarse = run 0.5 in
  (* The flood is continuous: one report per window per victim, so more
     windows means proportionally more reports. *)
  checkb "finer windows report more often" true (fine > 3 * coarse)

(* 4. Queries with different windows coexist on one device. *)
let test_mixed_windows_coexist () =
  let trace = attack_trace ~flows:400 () in
  let q_fast =
    Query.make ~window:0.05 ~id:21 ~name:"fast" ~description:""
      (Catalog.q1 ~th:10 ()).Query.branches
  in
  let q_slow =
    Query.make ~window:0.5 ~id:22 ~name:"slow" ~description:""
      (Catalog.q1 ~th:10 ()).Query.branches
  in
  let d = Device.create () in
  let _ = Device.add_query d q_fast in
  let _ = Device.add_query d q_slow in
  Device.process_trace d trace;
  let count id =
    List.length
      (List.filter (fun (r : Report.t) -> r.Report.query_id = id) (Device.reports d))
  in
  checkb "fast query reports in its own windows" true (count 21 > 3 * count 22);
  checkb "slow query still reports" true (count 22 > 0)

(* 5. Scheduler-planned deployment end to end. *)
let test_scheduler_plan_end_to_end () =
  let demands =
    [ Newton_controller.Scheduler.demand ~weight:4.0 (Catalog.q1 ());
      Newton_controller.Scheduler.demand (Catalog.q4 ());
      Newton_controller.Scheduler.demand (Catalog.q5 ()) ]
  in
  let plan = Newton_controller.Scheduler.plan ~register_pool:60_000 demands in
  checki "all admitted" 3 (List.length plan.Newton_controller.Scheduler.admitted);
  let d = Device.create () in
  List.iter
    (fun (a : Newton_controller.Scheduler.assignment) ->
      let options =
        { Newton_compiler.Decompose.default_options with
          registers = a.Newton_controller.Scheduler.registers }
      in
      ignore (Device.add_query ~options d a.Newton_controller.Scheduler.a_query))
    plan.Newton_controller.Scheduler.admitted;
  Device.process_trace d (attack_trace ());
  let qids =
    Device.reports d
    |> List.map (fun r -> r.Report.query_id)
    |> List.sort_uniq compare
  in
  Alcotest.(check (list int)) "all planned queries fire" [ 1; 4; 5 ] qids

(* 6. DSL intent deployed network-wide. *)
let test_dsl_to_network () =
  let q =
    Newton_query.Parser.parse ~id:30
      "filter(proto == tcp && tcp.flags == syn) | map(dip) | reduce(dip, \
       count) | filter(count > 20) | map(dip)"
  in
  let net = Network.create (Topo.fat_tree 4) in
  let _ = Network.add_query net q in
  Network.process_trace net (attack_trace ~flows:400 ());
  checkb "parsed intent detects network-wide" true (Network.message_count net > 0)

(* 7. Threshold update under traffic takes effect immediately. *)
let test_update_under_traffic () =
  let trace = attack_trace ~flows:400 () in
  let packets = Trace.packets trace in
  let half = Array.length packets / 2 in
  let d = Device.create () in
  let h = ref (fst (Device.add_query d (Catalog.q1 ~th:10 ()))) in
  Array.iteri
    (fun i p ->
      if i = half then
        (match Device.update_query d !h (Catalog.q1 ~th:1_000_000 ()) with
        | Some (h', _) -> h := h'
        | None -> Alcotest.fail "update failed");
      Device.process_packet d p)
    packets;
  let last_report_window =
    List.fold_left (fun acc (r : Report.t) -> max acc r.Report.window) 0 (Device.reports d)
  in
  let update_window =
    int_of_float (Newton_packet.Packet.ts packets.(half) /. 0.1)
  in
  checkb "reports stop after the threshold update" true
    (last_report_window <= update_window);
  checkb "it did report before" true (Device.message_count d > 0)

(* 8. Trace replay: saved trace produces identical detections via a
   different deployment (Device vs loaded-Network). *)
let test_saved_trace_cross_deployment () =
  let trace = attack_trace ~flows:300 ~seed:77 () in
  let path = Filename.temp_file "newton_integration" ".ntrc" in
  Newton_trace.Trace_io.save trace path;
  let loaded = Newton_trace.Trace_io.load path in
  Sys.remove path;
  let q = Catalog.q4 () in
  let run t =
    let d = Device.create () in
    let _ = Device.add_query d q in
    Device.process_trace d t;
    Device.reports d |> List.map Report.to_string |> List.sort compare
  in
  Alcotest.(check (list string)) "identical detections" (run trace) (run loaded)

let suite =
  [
    ("isp-wide monitoring with failure", `Slow, test_isp_wide_monitoring_with_failure);
    ("network single switch equals device", `Quick, test_network_single_switch_equals_device);
    ("window length scales reports", `Quick, test_window_length_scales_reports);
    ("mixed windows coexist", `Quick, test_mixed_windows_coexist);
    ("scheduler plan end to end", `Quick, test_scheduler_plan_end_to_end);
    ("dsl to network", `Quick, test_dsl_to_network);
    ("update under traffic", `Quick, test_update_under_traffic);
    ("saved trace cross deployment", `Quick, test_saved_trace_cross_deployment);
  ]
