(** Tests for the Newton public facade: Device and Network APIs, plus
    end-to-end integration scenarios. *)

open Newton_core.Newton

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let attack_trace ?(flows = 1200) ?(seed = 51) () =
  Trace.generate ~attacks:Newton_trace.Attack.default_suite ~seed
    (Trace_profile.with_flows Trace_profile.caida_like flows)

(* ---------------- Device ---------------- *)

let test_device_add_remove () =
  let d = Device.create () in
  let h, lat = Device.add_query d (Catalog.q1 ()) in
  checkb "install within 20ms" true (lat > 0.0 && lat < 0.020);
  checki "one query" 1 (List.length (Device.queries d));
  (match Device.remove_query d h with
  | Some lat -> checkb "removal within 20ms" true (lat > 0.0 && lat < 0.020)
  | None -> Alcotest.fail "remove failed");
  checki "none left" 0 (List.length (Device.queries d));
  Alcotest.(check (option (float 1.0))) "double remove" None (Device.remove_query d h)

let test_device_update () =
  let d = Device.create () in
  let h, _ = Device.add_query d (Catalog.q1 ~th:5 ()) in
  match Device.update_query d h (Catalog.q1 ~th:500 ()) with
  | Some (_, lat) ->
      checkb "update within 40ms" true (lat < 0.040);
      checki "still one query" 1 (List.length (Device.queries d))
  | None -> Alcotest.fail "update failed"

let test_device_all_queries_within_20ms () =
  List.iter
    (fun q ->
      let d = Device.create () in
      let _, lat = Device.add_query d q in
      checkb (Printf.sprintf "Q%d installs within 20ms" q.Query.id) true (lat < 0.020))
    (Catalog.all ())

let test_device_no_forwarding_interruption () =
  let d = Device.create () in
  List.iter (fun q -> ignore (Device.add_query d q)) (Catalog.all ());
  checkb "zero outage" true
    (Newton_dataplane.Switch.outage_time (Device.switch d) = 0.0)

let test_device_detects_attacks_end_to_end () =
  let d = Device.create () in
  List.iter (fun q -> ignore (Device.add_query d q)) (Catalog.all ());
  Device.process_trace d (attack_trace ());
  let qids =
    Device.reports d |> List.map (fun r -> r.Report.query_id) |> List.sort_uniq compare
  in
  Alcotest.(check (list int)) "all nine queries fire" [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ] qids

let test_device_update_changes_behavior () =
  (* Raising the threshold at runtime silences a detection. *)
  let trace = attack_trace () in
  let run th =
    let d = Device.create () in
    let _ = Device.add_query d (Catalog.q1 ~th ()) in
    Device.process_trace d trace;
    Device.message_count d
  in
  checkb "low threshold reports" true (run 20 > 0);
  checki "huge threshold silent" 0 (run 1_000_000)

(* ---------------- Network ---------------- *)

let test_network_deploy_on_fat_tree () =
  let net = Network.create (Topo.fat_tree 4) in
  let h, lat = Network.add_query net (Catalog.q1 ()) in
  checkb "latency sane" true (lat > 0.0 && lat < 0.1);
  Network.process_trace net (attack_trace ~flows:400 ());
  checkb "reports produced" true (Network.message_count net > 0);
  (match Network.remove_query net h with
  | Some _ -> ()
  | None -> Alcotest.fail "remove failed");
  checki "clean removal" 0
    (List.fold_left
       (fun acc s ->
         acc
         + List.length
             (Newton_runtime.Engine.instances
                (Newton_controller.Deploy.engine (Network.controller net) s)))
       0
       (Topo.switches (Network.topo net)))

let test_network_host_mapping_stable () =
  let topo = Topo.fat_tree 4 in
  let h1 = Network.host_of_ip topo 0x0A000001 in
  let h2 = Network.host_of_ip topo 0x0A000001 in
  checki "stable mapping" h1 h2;
  checkb "maps to a host" true (Topo.is_host topo h1)

let test_network_failure_resilience () =
  let net = Network.create (Topo.fat_tree 4) in
  let _ = Network.add_query net (Catalog.q1 ~th:10 ()) in
  let trace = attack_trace ~flows:400 () in
  Network.process_trace net trace;
  let before = Network.message_count net in
  checkb "detects before failure" true (before > 0);
  (* Fail a core-aggregation link and replay: still detected. *)
  Network.fail_link net (0, 4);
  let net2 = Network.create (Topo.fat_tree 4) in
  let _ = Network.add_query net2 (Catalog.q1 ~th:10 ()) in
  Network.fail_link net2 (0, 4);
  Network.process_trace net2 trace;
  checkb "detects after failure" true (Network.message_count net2 > 0)

(* ---------------- Integration scenarios ---------------- *)

(* The paper's §1 motivating workflow: a standing coarse query detects a
   DDoS; the operator drills down by installing a refined query at
   runtime, with no interruption. *)
let test_dynamic_drilldown () =
  let trace = attack_trace () in
  let d = Device.create () in
  let _ = Device.add_query d (Catalog.q5 ()) in
  Device.process_trace d trace;
  let victims =
    Device.reports d
    |> List.filter (fun r -> r.Report.query_id = 5)
    |> List.map (fun r -> r.Report.keys.(0))
    |> List.sort_uniq compare
  in
  checkb "udp ddos victim found" true (victims <> []);
  (* Drill down: watch the victim's sources with a refined query. *)
  let victim = List.hd victims in
  let refined =
    Query.chain ~id:100 ~name:"drilldown" ~description:"sources flooding the victim"
      [ Query.Filter
          [ Query.field_is Field.Proto 17; Query.field_is Field.Dst_ip victim ];
        Query.Map (Query.keys [ Field.Src_ip ]);
        Query.Reduce { keys = Query.keys [ Field.Src_ip ]; agg = Query.Count };
        Query.Filter [ Query.result_gt 3 ];
        Query.Map (Query.keys [ Field.Src_ip ]) ]
  in
  let _, lat = Device.add_query d refined in
  checkb "drilldown installs in ms" true (lat < 0.020);
  Device.process_trace d trace;
  let attackers =
    Device.reports d
    |> List.filter (fun r -> r.Report.query_id = 100)
    |> List.map (fun r -> r.Report.keys.(0))
    |> List.sort_uniq compare
  in
  checkb "attack sources identified" true (List.length attackers >= 10);
  checkb "forwarding never interrupted" true
    (Newton_dataplane.Switch.outage_time (Device.switch d) = 0.0)

let test_both_trace_profiles () =
  List.iter
    (fun profile ->
      let trace =
        Trace.generate ~attacks:Newton_trace.Attack.default_suite ~seed:77
          (Trace_profile.with_flows profile 1000)
      in
      let d = Device.create () in
      List.iter (fun q -> ignore (Device.add_query d q)) (Catalog.all ());
      Device.process_trace d trace;
      (* Monitoring overhead stays an order below generic exporters. *)
      let ratio =
        float_of_int (Device.message_count d) /. float_of_int (Trace.length trace)
      in
      checkb (Trace_profile.to_string profile ^ ": overhead < 5%") true (ratio < 0.05))
    [ Trace_profile.caida_like; Trace_profile.mawi_like ]

let test_newton_vs_sonata_agree () =
  (* Same queries, same trace: Newton's rule-built pipeline and the
     Sonata engine produce identical report sets (they share data-plane
     semantics; only reconfiguration differs). *)
  let trace = attack_trace ~flows:800 () in
  let d = Device.create () in
  let _ = Device.add_query d (Catalog.q4 ()) in
  Device.process_trace d trace;
  let s = Newton_baselines.Sonata.create () in
  let _ =
    Newton_baselines.Sonata.install_query s
      (Newton_compiler.Compose.compile (Catalog.q4 ()))
  in
  Trace.iter (Newton_baselines.Sonata.process_packet s) trace;
  let keyset rs =
    List.map (fun r -> (r.Report.window, r.Report.keys)) rs |> List.sort_uniq compare
  in
  Alcotest.(check (list (pair int (array int))))
    "identical detections"
    (keyset (Device.reports d))
    (keyset (Newton_baselines.Sonata.reports s))

let test_network_facade_extensions () =
  let net = Network.create (Topo.linear 3) in
  Network.set_enabled net 1 false;
  let plan =
    Newton_controller.Scheduler.plan ~register_pool:30_000
      [ Newton_controller.Scheduler.demand (Catalog.q1 ()) ]
  in
  let uids = Network.deploy_plan net plan in
  checki "plan deployed through the facade" 1 (List.length uids);
  checki "legacy switch untouched" 0
    (List.length
       (Newton_runtime.Engine.instances
          (Newton_controller.Deploy.engine (Network.controller net) 1)));
  checki "no deferrals yet" 0 (Network.software_deferrals net)

let suite =
  [
    ("device add/remove", `Quick, test_device_add_remove);
    ("device update", `Quick, test_device_update);
    ("device all queries within 20ms", `Quick, test_device_all_queries_within_20ms);
    ("device no forwarding interruption", `Quick, test_device_no_forwarding_interruption);
    ("device detects attacks end to end", `Slow, test_device_detects_attacks_end_to_end);
    ("device update changes behavior", `Quick, test_device_update_changes_behavior);
    ("network deploy on fat tree", `Quick, test_network_deploy_on_fat_tree);
    ("network host mapping stable", `Quick, test_network_host_mapping_stable);
    ("network failure resilience", `Quick, test_network_failure_resilience);
    ("dynamic drilldown scenario", `Slow, test_dynamic_drilldown);
    ("both trace profiles", `Slow, test_both_trace_profiles);
    ("newton vs sonata agree", `Quick, test_newton_vs_sonata_agree);
    ("network facade extensions", `Quick, test_network_facade_extensions);
  ]
