(** Tests for the reactive-intent service (automatic drill-down). *)

open Newton_query
open Newton_core

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* Drill-down template: enumerate UDP sources flooding the reported
   victim. *)
let sources_template (r : Report.t) =
  let victim = r.Report.keys.(0) in
  Ast.chain ~id:(500 + (victim land 0xff)) ~name:"drill_sources"
    ~description:"sources flooding the victim"
    [ Ast.Filter
        [ Ast.field_is Newton_packet.Field.Proto Newton_packet.Field.Protocol.udp;
          Ast.field_is Newton_packet.Field.Dst_ip victim ];
      Ast.Map (Ast.keys [ Newton_packet.Field.Src_ip ]);
      Ast.Reduce { keys = Ast.keys [ Newton_packet.Field.Src_ip ]; agg = Ast.Count };
      Ast.Filter [ Ast.result_gt 3 ];
      Ast.Map (Ast.keys [ Newton_packet.Field.Src_ip ]) ]

let ddos_trace ?(victims = 1) () =
  let attacks =
    List.init victims (fun i ->
        Newton_trace.Attack.Udp_ddos
          { victim = Newton_trace.Attack.host_of (5 + i); attackers = 80;
            pkts_per_attacker = 15 })
  in
  Newton_trace.Gen.generate ~attacks ~seed:31
    (Newton_trace.Profile.with_flows Newton_trace.Profile.caida_like 800)

let mk_service ?(max_instances = 4) () =
  let device = Newton.Device.create () in
  let _ = Newton.Device.add_query device (Catalog.q5 ()) in
  ( device,
    Reactive.create device
      [ { Reactive.trigger_id = 5; template = sources_template; max_instances } ] )

let test_drilldown_spawns_on_detection () =
  let device, svc = mk_service () in
  Reactive.process_trace svc (ddos_trace ());
  checki "one drill-down spawned" 1 (List.length (Reactive.spawned svc));
  (* The spawned query found the attack sources on the same pass. *)
  let attackers =
    Newton.Device.reports device
    |> List.filter (fun r -> r.Report.query_id >= 500)
    |> List.map (fun r -> r.Report.keys.(0))
    |> List.sort_uniq compare
  in
  checkb "sources enumerated" true (List.length attackers >= 20);
  checkb "no forwarding interruption" true
    (Newton_dataplane.Switch.outage_time (Newton.Device.switch device) = 0.0)

let test_no_duplicate_spawns () =
  let _, svc = mk_service () in
  let trace = ddos_trace () in
  Reactive.process_trace svc trace;
  Reactive.process_trace svc trace;
  checki "same victim never spawns twice" 1 (List.length (Reactive.spawned svc))

let test_instance_budget () =
  let _, svc = mk_service ~max_instances:2 () in
  Reactive.process_trace svc (ddos_trace ~victims:4 ());
  checkb "budget respected" true (List.length (Reactive.spawned svc) <= 2)

let test_multiple_victims_multiple_drilldowns () =
  let _, svc = mk_service ~max_instances:8 () in
  Reactive.process_trace svc (ddos_trace ~victims:3 ());
  checki "one drill-down per victim" 3 (List.length (Reactive.spawned svc))

let test_retract_all () =
  let device, svc = mk_service () in
  Reactive.process_trace svc (ddos_trace ());
  let before = List.length (Newton.Device.queries device) in
  checki "removed as many as spawned" 1 (Reactive.retract_all svc);
  checki "device back to the standing query" (before - 1)
    (List.length (Newton.Device.queries device));
  checki "spawn list cleared" 0 (List.length (Reactive.spawned svc))

let test_untriggered_rules_do_nothing () =
  let device = Newton.Device.create () in
  let _ = Newton.Device.add_query device (Catalog.q5 ()) in
  let svc =
    Reactive.create device
      [ { Reactive.trigger_id = 99; template = sources_template; max_instances = 4 } ]
  in
  Reactive.process_trace svc (ddos_trace ());
  checki "trigger on an absent query id spawns nothing" 0
    (List.length (Reactive.spawned svc))

let suite =
  [
    ("drilldown spawns on detection", `Quick, test_drilldown_spawns_on_detection);
    ("no duplicate spawns", `Quick, test_no_duplicate_spawns);
    ("instance budget", `Quick, test_instance_budget);
    ("multiple victims multiple drilldowns", `Quick, test_multiple_victims_multiple_drilldowns);
    ("retract all", `Quick, test_retract_all);
    ("untriggered rules do nothing", `Quick, test_untriggered_rules_do_nothing);
  ]
