(** Tests for iterative prefix refinement. *)

open Newton_core
open Newton_core.Newton

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let victim = Newton_trace.Attack.host_of 1 (* 10.200.0.1 *)

let flood_trace ?(flows = 600) () =
  Newton_trace.Gen.generate
    ~attacks:
      [ Newton_trace.Attack.Syn_flood { victim; attackers = 40; syns_per_attacker = 25 } ]
    ~seed:42
    (Newton_trace.Profile.with_flows Newton_trace.Profile.caida_like flows)

let test_create_validation () =
  let d = Device.create () in
  checkb "rejects empty levels" true
    (try ignore (Refine.create d ~field:Field.Dst_ip ~levels:[] ~th:5); false
     with Invalid_argument _ -> true);
  checkb "rejects unordered levels" true
    (try ignore (Refine.create d ~field:Field.Dst_ip ~levels:[ 16; 8 ] ~th:5); false
     with Invalid_argument _ -> true);
  checkb "rejects bad lengths" true
    (try ignore (Refine.create d ~field:Field.Dst_ip ~levels:[ 0; 8 ] ~th:5); false
     with Invalid_argument _ -> true)

let test_root_installed_on_create () =
  let d = Device.create () in
  let r = Refine.create d ~field:Field.Dst_ip ~levels:[ 8; 16 ] ~th:5 in
  checki "one root query" 1 (Refine.installs r);
  checki "device has it" 1 (List.length (Device.queries d))

let test_refines_down_to_the_host () =
  let d = Device.create () in
  let r = Refine.create d ~field:Field.Dst_ip ~levels:[ 8; 16; 24; 32 ] ~th:20 in
  Refine.process_trace r (flood_trace ());
  (* Re-run so queries installed late see a full pass of traffic. *)
  Refine.process_trace r (flood_trace ());
  let hits =
    Refine.results r |> List.map (fun x -> x.Report.keys.(0)) |> List.sort_uniq compare
  in
  checkb "victim found at /32" true (List.mem victim hits);
  (* The refinement only opened crossing prefixes: far fewer installs
     than the hundreds of active hosts a flat host-level scan covers. *)
  checkb "few refinement queries" true (Refine.installs r <= 50);
  checkb "all installs were rule-time" true (Refine.install_latency r < 0.2);
  checkb "forwarding never interrupted" true
    (Newton_dataplane.Switch.outage_time (Device.switch d) = 0.0)

let test_results_scoped_to_crossing_prefixes () =
  let d = Device.create () in
  let r = Refine.create d ~field:Field.Dst_ip ~levels:[ 8; 16 ] ~th:20 in
  Refine.process_trace r (flood_trace ());
  Refine.process_trace r (flood_trace ());
  (* every /16 result must fall under the victim's /8 (10.x) —
     background traffic also lives in 10/8 but below threshold hosts
     never refine further *)
  List.iter
    (fun (x : Report.t) ->
      checki "result inside the crossing /8" 0x0A000000 (x.Report.keys.(0) land 0xFF000000))
    (Refine.results r)

let test_no_duplicate_refinements () =
  let d = Device.create () in
  let r = Refine.create d ~field:Field.Dst_ip ~levels:[ 8; 16 ] ~th:20 in
  let trace = flood_trace () in
  Refine.process_trace r trace;
  let installs_after_one = Refine.installs r in
  Refine.process_trace r trace;
  checki "same prefixes do not reinstall" installs_after_one (Refine.installs r)

let test_retract_all () =
  let d = Device.create () in
  let r = Refine.create d ~field:Field.Dst_ip ~levels:[ 8; 16; 24 ] ~th:20 in
  Refine.process_trace r (flood_trace ());
  checkb "several levels live" true (List.length (Device.queries d) >= 2);
  Refine.retract_all r;
  checki "all removed" 0 (List.length (Device.queries d))

let test_refine_subset_of_flat_query () =
  (* Soundness: every /32 refinement result is also found by a flat
     host-level query at the same threshold over the same traffic. *)
  let trace = flood_trace () in
  let d = Device.create () in
  let r = Refine.create d ~field:Field.Dst_ip ~levels:[ 8; 16; 32 ] ~th:20 in
  Refine.process_trace r trace;
  Refine.process_trace r trace;
  let flat = Device.create () in
  let q =
    Query.chain ~id:1 ~name:"flat" ~description:""
      [ Query.Map (Query.keys [ Field.Dst_ip ]);
        Query.Reduce { keys = Query.keys [ Field.Dst_ip ]; agg = Query.Count };
        Query.Filter [ Query.result_gt 20 ];
        Query.Map (Query.keys [ Field.Dst_ip ]) ]
  in
  let _ = Device.add_query flat q in
  Device.process_trace flat trace;
  let flat_keys =
    Device.reports flat |> List.map (fun x -> x.Report.keys.(0)) |> List.sort_uniq compare
  in
  List.iter
    (fun (x : Report.t) ->
      checkb "refined hit also found flat" true (List.mem x.Report.keys.(0) flat_keys))
    (Refine.results r)

let suite =
  [
    ("create validation", `Quick, test_create_validation);
    ("root installed on create", `Quick, test_root_installed_on_create);
    ("refines down to the host", `Quick, test_refines_down_to_the_host);
    ("results scoped to crossing prefixes", `Quick, test_results_scoped_to_crossing_prefixes);
    ("no duplicate refinements", `Quick, test_no_duplicate_refinements);
    ("refine subset of flat query", `Quick, test_refine_subset_of_flat_query);
    ("retract all", `Quick, test_retract_all);
  ]
