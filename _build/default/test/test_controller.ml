(** Tests for Newton_controller: Algorithm 2 placement and network-wide
    deployment. *)

open Newton_network
open Newton_controller

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let compile = Newton_compiler.Compose.compile
let q1 () = compile (Newton_query.Catalog.q1 ())
let q4 () = compile (Newton_query.Catalog.q4 ())

(* ---------------- slice_stages ---------------- *)

let test_slice_stages_exact_fit () =
  let r = Placement.slice_stages ~stages:6 ~stages_per_switch:3 in
  Alcotest.(check (array (pair int int))) "two slices" [| (0, 2); (3, 5) |] r

let test_slice_stages_remainder () =
  let r = Placement.slice_stages ~stages:7 ~stages_per_switch:3 in
  Alcotest.(check (array (pair int int))) "last slice short" [| (0, 2); (3, 5); (6, 6) |] r

let test_slice_stages_single () =
  let r = Placement.slice_stages ~stages:5 ~stages_per_switch:12 in
  Alcotest.(check (array (pair int int))) "one slice" [| (0, 4) |] r

let test_slice_stages_rejects () =
  checkb "rejects 0" true
    (try ignore (Placement.slice_stages ~stages:5 ~stages_per_switch:0); false
     with Invalid_argument _ -> true)

(* ---------------- Algorithm 2 ---------------- *)

let test_placement_single_slice_on_edges () =
  let topo = Topo.fat_tree 4 in
  let p = Placement.place ~stages_per_switch:12 ~topo (q4 ()) in
  checki "M=1" 1 (Placement.num_slices p);
  (* Slice 1 lands exactly on the edge switches. *)
  List.iter
    (fun s -> checkb "edge switch has slice 1" true (List.mem 1 (Placement.slices_of p s)))
    (Topo.edge_switches topo);
  (* Core switches are never at depth 1 from an edge switch. *)
  checkb "core has no slice at depth 1" true
    (List.for_all (fun c -> Placement.slices_of p c = []) [ 0; 1; 2; 3 ])

let test_placement_depth_layers () =
  (* Linear chain, edges at both ends: depth-d sets are symmetric. *)
  let topo = Topo.linear 3 in
  let compiled = q4 () in
  let stages = compiled.Newton_compiler.Compose.stats.Newton_compiler.Compose.stages in
  let per = max 1 ((stages + 2) / 3) in
  let p = Placement.place ~stages_per_switch:per ~topo compiled in
  checki "M=3" 3 (Placement.num_slices p);
  Alcotest.(check (list int)) "sw0 slices" [ 1; 3 ] (Placement.slices_of p 0);
  Alcotest.(check (list int)) "sw1 slices" [ 2 ] (Placement.slices_of p 1);
  Alcotest.(check (list int)) "sw2 slices" [ 1; 3 ] (Placement.slices_of p 2)

let test_placement_exact_equals_memo_small () =
  let topo = Topo.fat_tree 4 in
  let compiled = q4 () in
  let pe = Placement.place ~mode:`Exact ~stages_per_switch:3 ~topo compiled in
  let pm = Placement.place ~mode:`Memo ~stages_per_switch:3 ~topo compiled in
  Array.iteri
    (fun s ds -> Alcotest.(check (list int)) "exact = memo" ds (Placement.slices_of pm s))
    pe.Placement.slices

let test_placement_covers_all_shortest_paths () =
  let topo = Topo.fat_tree 4 in
  let compiled = q4 () in
  let p = Placement.place ~stages_per_switch:3 ~topo compiled in
  let route = Route.create topo in
  let hosts = Topo.hosts topo in
  List.iter
    (fun h1 ->
      List.iter
        (fun h2 ->
          if h1 < h2 then
            match Route.switch_path route ~src_host:h1 ~dst_host:h2 with
            | Some path -> checkb "path covered" true (Placement.covers p path)
            | None -> ())
        hosts)
    (List.filteri (fun i _ -> i < 4) hosts)

let test_placement_covers_after_failure () =
  let topo = Topo.fat_tree 4 in
  let compiled = q4 () in
  let p = Placement.place ~stages_per_switch:3 ~topo compiled in
  let route = Route.create topo in
  let hosts = Topo.hosts topo in
  let h1 = List.nth hosts 0 and h2 = List.nth hosts 15 in
  let before = Option.get (Route.switch_path route ~src_host:h1 ~dst_host:h2) in
  (match before with
  | a :: b :: _ -> Route.fail_link route (a, b)
  | _ -> Alcotest.fail "short path");
  (* Rerouted path is still fully covered: Algorithm 2's guarantee. *)
  let after = Option.get (Route.switch_path route ~src_host:h1 ~dst_host:h2) in
  checkb "covers rerouted path" true (Placement.covers p after)

let test_placement_entry_accounting () =
  let topo = Topo.linear 1 in
  let compiled = q1 () in
  let p = Placement.place ~stages_per_switch:12 ~topo compiled in
  checki "single switch holds the whole query"
    compiled.Newton_compiler.Compose.stats.Newton_compiler.Compose.rules
    (Placement.total_entries p);
  checki "one switch used" 1 (Placement.switches_used p)

let test_placement_avg_entries () =
  let topo = Topo.fat_tree 4 in
  let p = Placement.place ~stages_per_switch:12 ~topo (q4 ()) in
  checkb "avg = total / used" true
    (abs_float
       (Placement.avg_entries p
       -. float_of_int (Placement.total_entries p)
          /. float_of_int (Placement.switches_used p))
    < 1e-9)

let test_placement_total_grows_with_slices () =
  let topo = Topo.fat_tree 8 in
  let compiled = q4 () in
  let t1 = Placement.total_entries (Placement.place ~stages_per_switch:12 ~topo compiled) in
  let t3 = Placement.total_entries (Placement.place ~stages_per_switch:3 ~topo compiled) in
  checkb "more slices, more entries" true (t3 > t1)

let test_placement_custom_edges () =
  let topo = Topo.isp () in
  let p = Placement.place ~edge_switches:[ 0 ] ~stages_per_switch:12 ~topo (q4 ()) in
  Alcotest.(check (list int)) "only the CA edge has slice 1" [ 1 ] (Placement.slices_of p 0);
  checki "one switch used at M=1" 1 (Placement.switches_used p)

(* qcheck: on random linear topologies, every path from an edge is
   covered up to M hops. *)
let qcheck_placement_coverage =
  QCheck.Test.make ~count:50 ~name:"placement covers bounded paths"
    QCheck.(pair (int_range 1 6) (int_range 1 4))
    (fun (n, per) ->
      let topo = Topo.linear n in
      let compiled = q4 () in
      let p = Placement.place ~stages_per_switch:per ~topo compiled in
      (* every prefix of the chain starting at either end is a possible
         forwarding path *)
      let ok = ref true in
      for len = 1 to n do
        let fwd = List.init len Fun.id in
        let bwd = List.init len (fun i -> n - 1 - i) in
        if not (Placement.covers p fwd && Placement.covers p bwd) then ok := false
      done;
      !ok)

(* ---------------- Deploy ---------------- *)

let test_deploy_and_undeploy () =
  let ctl = Deploy.create (Topo.linear 2) in
  let uid, lat = Deploy.deploy ctl (q1 ()) in
  checkb "install latency ms-scale" true (lat > 0.0 && lat < 0.05);
  checkb "deployment listed" true (Deploy.find_deployment ctl uid <> None);
  (match Deploy.undeploy ctl uid with
  | Some l -> checkb "removal latency positive" true (l > 0.0)
  | None -> Alcotest.fail "undeploy failed");
  checkb "gone" true (Deploy.find_deployment ctl uid = None);
  Alcotest.(check (option (float 1.0))) "double undeploy" None (Deploy.undeploy ctl uid)

let test_deploy_update () =
  let ctl = Deploy.create (Topo.linear 2) in
  let uid, _ = Deploy.deploy ctl (q1 ()) in
  match Deploy.update ctl uid (compile (Newton_query.Catalog.q1 ~th:50 ())) with
  | Some (uid', lat) ->
      checkb "new uid" true (uid' <> uid);
      checkb "update latency ms-scale" true (lat > 0.0 && lat < 0.1)
  | None -> Alcotest.fail "update failed"

let test_sole_mode_installs_everywhere () =
  let topo = Topo.linear 3 in
  let ctl = Deploy.create topo in
  let _ = Deploy.deploy ~mode:`Sole ctl (q1 ()) in
  List.iter
    (fun s ->
      checki "full instance on each switch" 1
        (List.length (Newton_runtime.Engine.instances (Deploy.engine ctl s))))
    (Topo.switches topo)

let test_cqe_messages_flat_sole_linear () =
  let trace =
    Newton_trace.Gen.generate
      ~attacks:
        [ Newton_trace.Attack.Syn_flood
            { victim = Newton_trace.Attack.host_of 1; attackers = 30; syns_per_attacker = 20 } ]
      ~seed:4
      (Newton_trace.Profile.with_flows Newton_trace.Profile.caida_like 300)
  in
  let run mode hops =
    let topo = Topo.linear hops in
    let ctl = Deploy.create topo in
    let compiled = q1 () in
    let stages = compiled.Newton_compiler.Compose.stats.Newton_compiler.Compose.stages in
    let per = max 1 ((stages + hops - 1) / hops) in
    let _ = Deploy.deploy ~mode ~stages_per_switch:per ctl compiled in
    let src = Topo.num_switches topo in
    Newton_trace.Gen.iter
      (fun p -> Deploy.process_packet ctl ~src_host:src ~dst_host:(src + 1) p)
      trace;
    Deploy.message_count ctl
  in
  let cqe1 = run `Cqe 1 and cqe3 = run `Cqe 3 in
  let sole1 = run `Sole 1 and sole3 = run `Sole 3 in
  checkb "some reports" true (cqe1 > 0);
  checki "CQE flat in hops" cqe1 cqe3;
  checki "sole grows linearly" (3 * sole1) sole3

let test_sp_overhead_counted () =
  let topo = Topo.linear 2 in
  let ctl = Deploy.create topo in
  let compiled = q1 () in
  let stages = compiled.Newton_compiler.Compose.stats.Newton_compiler.Compose.stages in
  let _ = Deploy.deploy ~stages_per_switch:((stages + 1) / 2) ctl compiled in
  let src = Topo.num_switches topo in
  for i = 1 to 10 do
    Deploy.process_packet ctl ~src_host:src ~dst_host:(src + 1)
      (Newton_packet.Packet.make ~ts:0.01 ~src_ip:i ~dst_ip:7 ~proto:6
         ~tcp_flags:Newton_packet.Field.Tcp_flag.syn ())
  done;
  checkb "sp bytes accounted" true (Deploy.sp_overhead_ratio ctl > 0.0)

let test_deploy_resilient_to_failure () =
  (* Deploy on a fat-tree, fail a link mid-trace: the rerouted traffic is
     still monitored (Algorithm 2 placed slices on all possible paths). *)
  let topo = Topo.fat_tree 4 in
  let ctl = Deploy.create topo in
  let _ = Deploy.deploy ~stages_per_switch:12 ctl (compile (Newton_query.Catalog.q1 ~th:10 ())) in
  let hosts = Topo.hosts topo in
  let h1 = List.nth hosts 0 and h2 = List.nth hosts 15 in
  let syn i ts =
    Newton_packet.Packet.make ~ts ~src_ip:i ~dst_ip:999 ~proto:6
      ~tcp_flags:Newton_packet.Field.Tcp_flag.syn ()
  in
  for i = 1 to 15 do
    Deploy.process_packet ctl ~src_host:h1 ~dst_host:h2 (syn i 0.01)
  done;
  (* Fail the first link of the current path; traffic reroutes. *)
  let path = Option.get (Route.switch_path (Deploy.route ctl) ~src_host:h1 ~dst_host:h2) in
  (match path with
  | a :: b :: _ -> Deploy.fail_link ctl (a, b)
  | _ -> Alcotest.fail "short path");
  for i = 16 to 30 do
    Deploy.process_packet ctl ~src_host:h1 ~dst_host:h2 (syn i 0.02)
  done;
  (* 30 SYNs to one host crossed the threshold despite the reroute. *)
  checkb "monitoring survives the reroute" true (Deploy.message_count ctl >= 1)

let test_layout_placed_at_creation () =
  let ctl = Deploy.create (Topo.linear 2) in
  let sw = Deploy.switch ctl 0 in
  let used = Newton_dataplane.Switch.total_used sw in
  let budget = Newton_dataplane.Switch.total_budget sw in
  checkb "layout consumes resources" true (used.Newton_dataplane.Resource.sram > 0.0);
  checkb "layout fits the pipeline" true (Newton_dataplane.Resource.fits used budget);
  (* the two per-stage suites saturate SALU exactly *)
  let s0 = Newton_dataplane.Switch.stage sw 0 in
  Alcotest.(check (float 1e-9)) "SALU saturated" 4.0
    (Newton_dataplane.Stage.used s0).Newton_dataplane.Resource.salu;
  Alcotest.(check (float 1e-9)) "TCAM saturated" 24.0
    (Newton_dataplane.Stage.used s0).Newton_dataplane.Resource.tcam

let test_deploy_plan () =
  let topo = Topo.linear 2 in
  let ctl = Deploy.create topo in
  let plan =
    Scheduler.plan ~register_pool:60_000
      [ Scheduler.demand ~weight:4.0 (Newton_query.Catalog.q1 ());
        Scheduler.demand (Newton_query.Catalog.q4 ()) ]
  in
  let uids = Deploy.deploy_plan ctl plan in
  checki "two deployments" 2 (List.length uids);
  (* run traffic and both fire *)
  let trace =
    Newton_trace.Gen.generate ~attacks:Newton_trace.Attack.default_suite ~seed:44
      (Newton_trace.Profile.with_flows Newton_trace.Profile.caida_like 400)
  in
  let src = Topo.num_switches topo in
  Newton_trace.Gen.iter
    (fun p -> Deploy.process_packet ctl ~src_host:src ~dst_host:(src + 1) p)
    trace;
  let qids =
    Deploy.all_reports ctl
    |> List.map (fun r -> r.Newton_query.Report.query_id)
    |> List.sort_uniq compare
  in
  Alcotest.(check (list int)) "planned queries fire" [ 1; 4 ] qids

let test_deploy_capacity_rollback () =
  let ctl = Deploy.create (Topo.linear 1) in
  let compiled = q4 () in
  (* Saturate a module cell: Q4 clones until the engine rejects. *)
  let deployed = ref 0 in
  (try
     for _ = 1 to 400 do
       ignore (Deploy.deploy ctl compiled);
       incr deployed
     done
   with Newton_runtime.Engine.Rules_exhausted _ -> ());
  checkb "eventually rejected" true (!deployed < 400);
  let engine = Deploy.engine ctl 0 in
  (* every live instance belongs to a successful deployment: counts
     match, no orphan slices from the failed attempt *)
  checki "no partial residue" !deployed
    (List.length (Newton_runtime.Engine.instances engine));
  checki "deployment list consistent" !deployed
    (List.length (Deploy.deployments ctl))

let suite =
  [
    ("slice_stages exact fit", `Quick, test_slice_stages_exact_fit);
    ("slice_stages remainder", `Quick, test_slice_stages_remainder);
    ("slice_stages single", `Quick, test_slice_stages_single);
    ("slice_stages rejects", `Quick, test_slice_stages_rejects);
    ("placement single slice on edges", `Quick, test_placement_single_slice_on_edges);
    ("placement depth layers", `Quick, test_placement_depth_layers);
    ("placement exact = memo (small)", `Quick, test_placement_exact_equals_memo_small);
    ("placement covers shortest paths", `Quick, test_placement_covers_all_shortest_paths);
    ("placement covers after failure", `Quick, test_placement_covers_after_failure);
    ("placement entry accounting", `Quick, test_placement_entry_accounting);
    ("placement avg entries", `Quick, test_placement_avg_entries);
    ("placement total grows with slices", `Quick, test_placement_total_grows_with_slices);
    ("placement custom edges", `Quick, test_placement_custom_edges);
    QCheck_alcotest.to_alcotest qcheck_placement_coverage;
    ("layout placed at creation", `Quick, test_layout_placed_at_creation);
    ("deploy capacity rollback", `Quick, test_deploy_capacity_rollback);
    ("deploy plan", `Quick, test_deploy_plan);
    ("deploy and undeploy", `Quick, test_deploy_and_undeploy);
    ("deploy update", `Quick, test_deploy_update);
    ("sole mode installs everywhere", `Quick, test_sole_mode_installs_everywhere);
    ("cqe flat vs sole linear", `Quick, test_cqe_messages_flat_sole_linear);
    ("sp overhead counted", `Quick, test_sp_overhead_counted);
    ("deploy resilient to failure", `Quick, test_deploy_resilient_to_failure);
  ]
