(** Tests for Newton_trace: profiles, attack injectors, trace
    generation. *)

open Newton_packet
open Newton_trace

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ---------------- Profile ---------------- *)

let test_profiles_sane () =
  List.iter
    (fun (p : Profile.t) ->
      checkb "tcp fraction in [0,1]" true (p.tcp_fraction >= 0.0 && p.tcp_fraction <= 1.0);
      checkb "positive flows" true (p.flows > 0);
      checkb "positive hosts" true (p.hosts > 0))
    [ Profile.caida_like; Profile.mawi_like ]

let test_profile_scale () =
  let p = Profile.scale Profile.caida_like 0.5 in
  checki "half flows" (Profile.caida_like.flows / 2) p.Profile.flows

let test_profile_with_flows () =
  checki "override flows" 123 (Profile.with_flows Profile.caida_like 123).Profile.flows

(* ---------------- Generation ---------------- *)

let small_profile = Profile.with_flows Profile.caida_like 300

let test_gen_deterministic () =
  let a = Gen.generate ~seed:1 small_profile in
  let b = Gen.generate ~seed:1 small_profile in
  checki "same packet count" (Gen.length a) (Gen.length b);
  Array.iteri
    (fun i p ->
      checkb "identical packets" true
        (Packet.to_string p = Packet.to_string (Gen.packets b).(i)))
    (Gen.packets a)

let test_gen_seeds_differ () =
  let a = Gen.generate ~seed:1 small_profile in
  let b = Gen.generate ~seed:2 small_profile in
  checkb "different seeds give different traces" true
    (Gen.length a <> Gen.length b
    || Packet.to_string (Gen.packets a).(0) <> Packet.to_string (Gen.packets b).(0))

let test_gen_sorted_by_time () =
  let t = Gen.generate ~seed:3 small_profile in
  let prev = ref neg_infinity in
  Gen.iter
    (fun p ->
      checkb "non-decreasing timestamps" true (Packet.ts p >= !prev);
      prev := Packet.ts p)
    t

let test_gen_scales_with_flows () =
  let small = Gen.generate ~seed:4 (Profile.with_flows Profile.caida_like 100) in
  let large = Gen.generate ~seed:4 (Profile.with_flows Profile.caida_like 1000) in
  checkb "more flows, more packets" true (Gen.length large > Gen.length small * 4)

let test_gen_protocol_mix () =
  let t = Gen.generate ~seed:5 (Profile.with_flows Profile.caida_like 2000) in
  let tcp = ref 0 and total = ref 0 in
  Gen.iter
    (fun p ->
      incr total;
      if Packet.is_tcp p then incr tcp)
    t;
  let frac = float_of_int !tcp /. float_of_int !total in
  (* caida-like is TCP-dominated; TCP flows also emit more packets. *)
  checkb "tcp-dominated" true (frac > 0.6)

let test_gen_total_bytes_positive () =
  let t = Gen.generate ~seed:6 small_profile in
  checkb "bytes accumulate" true (Gen.total_bytes t > Gen.length t * 40)

let test_gen_fold () =
  let t = Gen.generate ~seed:7 small_profile in
  let n = Gen.fold (fun acc _ -> acc + 1) 0 t in
  checki "fold visits all" (Gen.length t) n

let epoch_shares trace epochs =
  let counts = Array.make epochs 0 in
  let dur = (Gen.profile trace).Profile.duration in
  Gen.iter
    (fun p ->
      let e =
        min (epochs - 1)
          (int_of_float (Packet.ts p /. dur *. float_of_int epochs))
      in
      counts.(e) <- counts.(e) + 1)
    trace;
  let total = float_of_int (Gen.length trace) in
  Array.map (fun c -> float_of_int c /. total) counts

let test_burstiness_zero_is_uniform () =
  let t = Gen.generate ~seed:2 (Profile.with_flows Profile.caida_like 2000) in
  let shares = epoch_shares t 10 in
  Array.iter
    (fun s -> checkb "each epoch near 10%" true (s > 0.05 && s < 0.2))
    shares

let test_burstiness_concentrates_arrivals () =
  let p =
    Profile.with_burstiness (Profile.with_flows Profile.caida_like 2000) 0.9
  in
  let t = Gen.generate ~seed:2 p in
  let shares = epoch_shares t 10 in
  let peak = Array.fold_left max 0.0 shares in
  checkb "peak epoch well above uniform" true (peak > 0.2)

let test_burstiness_clamped () =
  let p = Profile.with_burstiness Profile.caida_like 5.0 in
  checkb "clamped" true (p.Profile.burstiness <= 0.95);
  let q = Profile.with_burstiness Profile.caida_like (-1.0) in
  checkb "clamped below" true (q.Profile.burstiness = 0.0)

let test_bursty_trace_still_monitorable () =
  let p =
    Profile.with_burstiness (Profile.with_flows Profile.caida_like 600) 0.8
  in
  let t = Gen.generate ~attacks:Attack.default_suite ~seed:3 p in
  let d = Newton_core.Newton.Device.create () in
  let _ = Newton_core.Newton.Device.add_query d (Newton_query.Catalog.q1 ()) in
  Newton_core.Newton.Device.process_trace d t;
  checkb "detection still works under bursts" true
    (Newton_core.Newton.Device.message_count d > 0)

(* ---------------- Attacks ---------------- *)

let gen_attack a =
  let rng = Newton_util.Prng.of_int 9 in
  Attack.generate rng ~duration:1.0 a

let test_syn_flood_signature () =
  let victim = Attack.host_of 1 in
  let pkts = gen_attack (Attack.Syn_flood { victim; attackers = 5; syns_per_attacker = 4 }) in
  checki "5*4 packets" 20 (List.length pkts);
  List.iter
    (fun p ->
      checkb "all SYN" true (Packet.is_syn p);
      checki "to victim" victim (Packet.get p Field.Dst_ip))
    pkts

let test_port_scan_signature () =
  let pkts =
    gen_attack (Attack.Port_scan { scanner = Attack.host_of 2; victim = Attack.host_of 3; ports = 50 })
  in
  checki "one probe per port" 50 (List.length pkts);
  let ports = List.map (fun p -> Packet.get p Field.Dst_port) pkts in
  checki "all ports distinct" 50 (List.length (List.sort_uniq compare ports))

let test_super_spreader_signature () =
  let src = Attack.host_of 4 in
  let pkts = gen_attack (Attack.Super_spreader { source = src; fanout = 30 }) in
  let dsts = List.map (fun p -> Packet.get p Field.Dst_ip) pkts in
  checki "30 distinct destinations" 30 (List.length (List.sort_uniq compare dsts));
  List.iter (fun p -> checki "same source" src (Packet.get p Field.Src_ip)) pkts

let test_udp_ddos_signature () =
  let victim = Attack.host_of 5 in
  let pkts = gen_attack (Attack.Udp_ddos { victim; attackers = 6; pkts_per_attacker = 3 }) in
  checki "6*3 packets" 18 (List.length pkts);
  List.iter (fun p -> checkb "all UDP" true (Packet.is_udp p)) pkts;
  let srcs = List.map (fun p -> Packet.get p Field.Src_ip) pkts in
  checki "6 distinct sources" 6 (List.length (List.sort_uniq compare srcs))

let test_ssh_brute_completes_connections () =
  let victim = Attack.host_of 6 in
  let pkts = gen_attack (Attack.Ssh_brute { victim; attackers = 2; attempts_each = 3 }) in
  checki "4 packets per attempt" 24 (List.length pkts);
  let fins =
    List.filter (fun p -> Packet.get p Field.Tcp_flags land Field.Tcp_flag.fin <> 0) pkts
  in
  checki "one FIN per attempt" 6 (List.length fins);
  List.iter
    (fun p ->
      let to_v = Packet.get p Field.Dst_ip = victim && Packet.get p Field.Dst_port = 22 in
      let from_v = Packet.get p Field.Src_ip = victim && Packet.get p Field.Src_port = 22 in
      checkb "port 22 traffic" true (to_v || from_v))
    pkts

let test_slowloris_low_bytes () =
  let pkts = gen_attack (Attack.Slowloris { victim = Attack.host_of 7; conns = 10 }) in
  checki "4 packets per conn" 40 (List.length pkts);
  let payload = List.fold_left (fun acc p -> acc + Packet.get p Field.Payload_len) 0 pkts in
  checkb "tiny payloads" true (payload <= 10 * 2)

let test_dns_orphan_no_tcp () =
  let pkts = gen_attack (Attack.Dns_orphan { resolver = Attack.host_of 8; victims = 5 }) in
  checkb "no TCP follows the responses" true (List.for_all (fun p -> not (Packet.is_tcp p)) pkts);
  let responses = List.filter (fun p -> Packet.get p Field.Dns_qr = 1) pkts in
  checki "three responses per victim (retries)" 15 (List.length responses)

let test_attack_hosts_disjoint_from_background () =
  let t =
    Gen.generate ~seed:10 ~attacks:Attack.default_suite
      (Profile.with_flows Profile.caida_like 200)
  in
  (* Background hosts live in 10.0.x.x, attack infrastructure in 10.200.x.x. *)
  checkb "both address spaces present" true
    (Gen.fold
       (fun acc p -> acc || Packet.get p Field.Src_ip land 0xFFFF0000 = 0x0AC80000)
       false t)

let test_reported_host () =
  let victim = Attack.host_of 1 in
  checki "syn flood reports victim" victim
    (Attack.reported_host (Attack.Syn_flood { victim; attackers = 1; syns_per_attacker = 1 }))

let test_attack_to_string () =
  List.iter
    (fun a -> checkb "describable" true (String.length (Attack.to_string a) > 0))
    Attack.default_suite

let test_timestamps_within_duration () =
  let pkts = gen_attack (Attack.Super_spreader { source = Attack.host_of 4; fanout = 100 }) in
  List.iter
    (fun p -> checkb "ts in [0, duration+eps)" true (Packet.ts p >= 0.0 && Packet.ts p < 1.1))
    pkts

let suite =
  [
    ("profiles sane", `Quick, test_profiles_sane);
    ("profile scale", `Quick, test_profile_scale);
    ("profile with_flows", `Quick, test_profile_with_flows);
    ("gen deterministic", `Quick, test_gen_deterministic);
    ("gen seeds differ", `Quick, test_gen_seeds_differ);
    ("gen sorted by time", `Quick, test_gen_sorted_by_time);
    ("gen scales with flows", `Quick, test_gen_scales_with_flows);
    ("gen protocol mix", `Quick, test_gen_protocol_mix);
    ("gen total bytes", `Quick, test_gen_total_bytes_positive);
    ("gen fold", `Quick, test_gen_fold);
    ("burstiness zero is uniform", `Quick, test_burstiness_zero_is_uniform);
    ("burstiness concentrates arrivals", `Quick, test_burstiness_concentrates_arrivals);
    ("burstiness clamped", `Quick, test_burstiness_clamped);
    ("bursty trace still monitorable", `Quick, test_bursty_trace_still_monitorable);
    ("syn flood signature", `Quick, test_syn_flood_signature);
    ("port scan signature", `Quick, test_port_scan_signature);
    ("super spreader signature", `Quick, test_super_spreader_signature);
    ("udp ddos signature", `Quick, test_udp_ddos_signature);
    ("ssh brute completes connections", `Quick, test_ssh_brute_completes_connections);
    ("slowloris low bytes", `Quick, test_slowloris_low_bytes);
    ("dns orphan no tcp", `Quick, test_dns_orphan_no_tcp);
    ("attack hosts disjoint", `Quick, test_attack_hosts_disjoint_from_background);
    ("reported host", `Quick, test_reported_host);
    ("attack to_string", `Quick, test_attack_to_string);
    ("timestamps within duration", `Quick, test_timestamps_within_duration);
  ]
