(** Tests for register allocation among concurrent queries. *)

open Newton_dataplane
open Newton_sketch

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)

let mk () = Register_alloc.create ~arrays:2 ~registers_per_array:1024

let test_create_accounting () =
  let a = mk () in
  checki "total" 2048 (Register_alloc.total_registers a);
  checki "all free" 2048 (Register_alloc.free_registers a);
  checki "nothing live" 0 (Register_alloc.allocated_registers a)

let test_alloc_first_fit () =
  let a = mk () in
  match Register_alloc.alloc a ~registers:256 with
  | Some r ->
      checki "first array" 0 r.Register_alloc.array_id;
      checki "at offset 0" 0 r.Register_alloc.offset;
      checki "length" 256 r.Register_alloc.length;
      checki "accounted" 256 (Register_alloc.allocated_registers a)
  | None -> Alcotest.fail "alloc failed"

let test_alloc_splits_blocks () =
  let a = mk () in
  let r1 = Option.get (Register_alloc.alloc a ~registers:100) in
  let r2 = Option.get (Register_alloc.alloc a ~registers:100) in
  checki "adjacent" (r1.Register_alloc.offset + 100) r2.Register_alloc.offset;
  checki "free shrinks" 1848 (Register_alloc.free_registers a)

let test_alloc_spills_to_second_array () =
  let a = mk () in
  let _ = Option.get (Register_alloc.alloc a ~registers:1024) in
  match Register_alloc.alloc a ~registers:512 with
  | Some r -> checki "second array" 1 r.Register_alloc.array_id
  | None -> Alcotest.fail "should spill to second array"

let test_alloc_exhaustion () =
  let a = mk () in
  let _ = Option.get (Register_alloc.alloc a ~registers:1024) in
  let _ = Option.get (Register_alloc.alloc a ~registers:1024) in
  checkb "pool exhausted" true (Register_alloc.alloc a ~registers:1 = None)

let test_alloc_no_cross_array_block () =
  (* 1024 left in each array: a 1500-register request cannot span. *)
  let a = mk () in
  checkb "no spanning allocation" true (Register_alloc.alloc a ~registers:1500 = None)

let test_free_and_reuse () =
  let a = mk () in
  let r1 = Option.get (Register_alloc.alloc a ~registers:512) in
  let _ = Option.get (Register_alloc.alloc a ~registers:512) in
  Register_alloc.free a r1;
  (match Register_alloc.alloc a ~registers:512 with
  | Some r -> checki "reuses freed block" 0 r.Register_alloc.offset
  | None -> Alcotest.fail "reuse failed");
  checkb "double free raises" true
    (try Register_alloc.free a r1; Register_alloc.free a r1; false
     with Register_alloc.Not_allocated -> true)

let test_free_coalesces () =
  let a = mk () in
  let r1 = Option.get (Register_alloc.alloc a ~registers:512) in
  let r2 = Option.get (Register_alloc.alloc a ~registers:512) in
  Register_alloc.free a r1;
  Register_alloc.free a r2;
  checki "coalesced back to a full array" 1024 (Register_alloc.largest_free_block a);
  checkf "no fragmentation" 0.0 (Register_alloc.fragmentation a)

let test_fragmentation_measure () =
  let a = Register_alloc.create ~arrays:1 ~registers_per_array:1024 in
  let _r1 = Option.get (Register_alloc.alloc a ~registers:256) in
  let r2 = Option.get (Register_alloc.alloc a ~registers:256) in
  let _r3 = Option.get (Register_alloc.alloc a ~registers:256) in
  Register_alloc.free a r2;
  (* free = 256 (hole) + 256 (tail); largest block 256 *)
  checkf "half the free memory is stranded" 0.5 (Register_alloc.fragmentation a)

let test_free_zeroes_registers () =
  let a = mk () in
  let r = Option.get (Register_alloc.alloc a ~registers:16) in
  let v = Register_alloc.view a r in
  ignore (Register_alloc.View.exec v (Alu.Add 7) 3);
  Register_alloc.free a r;
  let r' = Option.get (Register_alloc.alloc a ~registers:16) in
  checki "fresh allocation sees zeroes" 0
    (Register_alloc.View.get (Register_alloc.view a r') 3)

let test_view_isolation () =
  let a = mk () in
  let v1 = Option.get (Register_alloc.alloc_view a ~registers:128) in
  let v2 = Option.get (Register_alloc.alloc_view a ~registers:128) in
  ignore (Register_alloc.View.exec v1 (Alu.Add 5) 0);
  checki "other query's range untouched" 0 (Register_alloc.View.get v2 0);
  checki "own value visible" 5 (Register_alloc.View.get v1 0)

let test_view_wraps_indices () =
  let a = mk () in
  let v = Option.get (Register_alloc.alloc_view a ~registers:8) in
  ignore (Register_alloc.View.exec v (Alu.Add 1) 3);
  checki "index 11 wraps to 3" 1 (Register_alloc.View.get v 11)

let test_view_clear_and_occupancy () =
  let a = mk () in
  let v = Option.get (Register_alloc.alloc_view a ~registers:32) in
  ignore (Register_alloc.View.exec v (Alu.Add 1) 1);
  ignore (Register_alloc.View.exec v (Alu.Add 1) 2);
  checki "occupancy" 2 (Register_alloc.View.occupancy v);
  Register_alloc.View.clear v;
  checki "cleared" 0 (Register_alloc.View.occupancy v)

let test_capacity_planning () =
  let a = mk () in
  checki "queries of 256 registers" 8 (Register_alloc.capacity a ~per_query:256);
  let _ = Option.get (Register_alloc.alloc a ~registers:512) in
  checki "capacity shrinks" 6 (Register_alloc.capacity a ~per_query:256)

let test_sharing_degrades_accuracy_gracefully () =
  (* Two queries share a 512-register array, 256 each: each behaves
     exactly like a private 256-register sketch. *)
  let a = Register_alloc.create ~arrays:1 ~registers_per_array:512 in
  let shared = Option.get (Register_alloc.alloc_view a ~registers:256) in
  let private_arr = Register_array.create 256 in
  let h = Hash.create ~seed:3 ~range:256 in
  for k = 0 to 499 do
    let i = Hash.apply_int h k in
    ignore (Register_alloc.View.exec shared (Alu.Add 1) i);
    ignore (Register_array.exec private_arr (Alu.Add 1) i)
  done;
  for i = 0 to 255 do
    checki "identical contents" (Register_array.get private_arr i)
      (Register_alloc.View.get shared i)
  done

let qcheck_alloc_free_invariant =
  QCheck.Test.make ~count:100 ~name:"register_alloc: alloc/free conserves registers"
    QCheck.(list_of_size Gen.(int_range 1 30) (int_range 1 300))
    (fun sizes ->
      let a = Register_alloc.create ~arrays:4 ~registers_per_array:1024 in
      let total = Register_alloc.total_registers a in
      let allocated =
        List.filter_map (fun s -> Register_alloc.alloc a ~registers:s) sizes
      in
      let mid_ok =
        Register_alloc.free_registers a + Register_alloc.allocated_registers a = total
      in
      List.iter (Register_alloc.free a) allocated;
      mid_ok
      && Register_alloc.free_registers a = total
      && Register_alloc.fragmentation a = 0.0)

let suite =
  [
    ("create accounting", `Quick, test_create_accounting);
    ("alloc first fit", `Quick, test_alloc_first_fit);
    ("alloc splits blocks", `Quick, test_alloc_splits_blocks);
    ("alloc spills to second array", `Quick, test_alloc_spills_to_second_array);
    ("alloc exhaustion", `Quick, test_alloc_exhaustion);
    ("no cross-array block", `Quick, test_alloc_no_cross_array_block);
    ("free and reuse", `Quick, test_free_and_reuse);
    ("free coalesces", `Quick, test_free_coalesces);
    ("fragmentation measure", `Quick, test_fragmentation_measure);
    ("free zeroes registers", `Quick, test_free_zeroes_registers);
    ("view isolation", `Quick, test_view_isolation);
    ("view wraps indices", `Quick, test_view_wraps_indices);
    ("view clear and occupancy", `Quick, test_view_clear_and_occupancy);
    ("capacity planning", `Quick, test_capacity_planning);
    ("sharing equals private sketch", `Quick, test_sharing_degrades_accuracy_gracefully);
    QCheck_alcotest.to_alcotest qcheck_alloc_free_invariant;
  ]
