(** Tests for Newton_compiler: decomposition, Algorithm 1 (Opt.1/2/3),
    stage assignment invariants, Sonata cost model. *)

open Newton_query
open Newton_compiler
open Newton_compiler.Ir

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let q1 () = Catalog.q1 ()
let compile = Compose.compile
let baseline = Decompose.baseline_options
let default = Decompose.default_options

(* ---------------- Decomposition ---------------- *)

let slots_of_kind kind slots = List.filter (fun s -> s.kind = kind) slots

let test_filter_decomposes_to_full_suite () =
  let q =
    Ast.chain ~id:0 ~name:"f" ~description:""
      [ Ast.Filter [ Ast.field_is Newton_packet.Field.Proto 6 ] ]
  in
  let d = Decompose.decompose ~options:default q in
  let slots = d.Decompose.branches.(0) in
  (* The filter needs all four modules (R can only match the state
     result, conveyed via H/S); its R doubles as the report action. *)
  checki "exactly one suite" 4 (List.length slots);
  checkb "all filter modules used" true (List.for_all (fun s -> s.used) slots);
  checkb "filter R reports" true
    (List.exists
       (fun s -> match s.cfg with R_cfg { report = true; _ } -> true | _ -> false)
       slots)

let test_map_only_k_used () =
  let q =
    Ast.chain ~id:0 ~name:"m" ~description:""
      [ Ast.Map (Ast.keys [ Newton_packet.Field.Dst_ip ]) ]
  in
  let d = Decompose.decompose ~options:default q in
  let prim0 = List.filter (fun s -> s.prim = 0) d.Decompose.branches.(0) in
  List.iter
    (fun s ->
      checkb "only K used"
        (s.kind = Newton_dataplane.Module_cost.K)
        s.used)
    prim0

let test_threshold_filter_r_only () =
  let q =
    Ast.chain ~id:0 ~name:"t" ~description:""
      [ Ast.Reduce { keys = Ast.keys [ Newton_packet.Field.Dst_ip ]; agg = Ast.Count };
        Ast.Filter [ Ast.result_gt 5 ] ]
  in
  let d = Decompose.decompose ~options:default q in
  let prim1 = List.filter (fun s -> s.prim = 1) d.Decompose.branches.(0) in
  List.iter
    (fun s ->
      checkb "only R used"
        (s.kind = Newton_dataplane.Module_cost.R)
        s.used)
    prim1

let test_reduce_has_depth_suites () =
  let opts = { default with reduce_depth = 4 } in
  let q =
    Ast.chain ~id:0 ~name:"r" ~description:""
      [ Ast.Reduce { keys = Ast.keys [ Newton_packet.Field.Dst_ip ]; agg = Ast.Count } ]
  in
  let d = Decompose.decompose ~options:opts q in
  let s_slots = slots_of_kind Newton_dataplane.Module_cost.S d.Decompose.branches.(0) in
  checki "one S per CM row" 4
    (List.length (List.filter (fun s -> match s.cfg with S_cfg { op = S_cm _; _ } -> true | _ -> false) s_slots))

let test_distinct_uses_bloom_rows () =
  let opts = { default with distinct_depth = 3 } in
  let q =
    Ast.chain ~id:0 ~name:"d" ~description:""
      [ Ast.Distinct (Ast.keys [ Newton_packet.Field.Dst_ip ]) ]
  in
  let d = Decompose.decompose ~options:opts q in
  let bf_rows =
    List.filter
      (fun s -> match s.cfg with S_cfg { op = S_bf; _ } -> true | _ -> false)
      d.Decompose.branches.(0)
  in
  checki "3 BF rows" 3 (List.length bf_rows)

let test_combine_query_reads_sibling () =
  let d = Decompose.decompose ~options:default (Catalog.q6 ()) in
  let reads =
    List.filter
      (fun s -> match s.cfg with S_cfg { op = S_read _; _ } -> true | _ -> false)
      d.Decompose.branches.(0)
  in
  checki "one read-back" 1 (List.length reads);
  match (List.hd reads).cfg with
  | S_cfg { op = S_read { ar_branch; _ }; _ } -> checki "reads branch 1" 1 ar_branch
  | _ -> Alcotest.fail "expected S_read"

let test_min_combine_mirrors_both_branches () =
  let d = Decompose.decompose ~options:default (Catalog.q7 ()) in
  let has_read b =
    List.exists
      (fun s -> match s.cfg with S_cfg { op = S_read _; _ } -> true | _ -> false)
      d.Decompose.branches.(b)
  in
  checkb "branch 0 reads" true (has_read 0);
  checkb "branch 1 reads too (Min)" true (has_read 1)

let test_sub_combine_single_side () =
  let d = Decompose.decompose ~options:default (Catalog.q9 ()) in
  let has_read b =
    List.exists
      (fun s -> match s.cfg with S_cfg { op = S_read _; _ } -> true | _ -> false)
      d.Decompose.branches.(b)
  in
  checkb "branch 0 reads" true (has_read 0);
  checkb "branch 1 does not (Sub)" false (has_read 1)

let test_every_query_has_reporting_r () =
  List.iter
    (fun q ->
      let c = compile q in
      let reports =
        Array.fold_left
          (fun acc slots ->
            acc
            + List.length
                (List.filter
                   (fun s -> match s.cfg with R_cfg { report = true; _ } -> true | _ -> false)
                   slots))
          0 c.Compose.branches
      in
      checkb (Printf.sprintf "Q%d reports" q.Ast.id) true (reports >= 1))
    (Catalog.all ())

let test_pack_values_deterministic () =
  checki "same inputs same pack" (Decompose.pack_values [ 1; 2; 3 ]) (Decompose.pack_values [ 1; 2; 3 ]);
  checkb "order sensitive" true (Decompose.pack_values [ 1; 2 ] <> Decompose.pack_values [ 2; 1 ])

(* ---------------- Opt.1 ---------------- *)

let test_opt1_absorbs_front_filter () =
  let c = compile (q1 ()) in
  let entry = c.Compose.init_entries.(0) in
  checkb "newton_init entries installed" true (entry.ie_matches <> []);
  checkb "matches proto and flags" true (List.length entry.ie_matches = 2)

let test_opt1_eight_of_nine () =
  (* Paper §6.4: front-filter replacement applies to 8 of 9 queries.
     Q3 (super spreader) starts with map, so it has no front filter to
     absorb.  Q9's first branch keeps its dns.qr test (newton_init only
     matches the 5-tuple and TCP flags) but its TCP branch is absorbed. *)
  let absorbed =
    List.filter
      (fun q ->
        let c = compile q in
        Array.exists (fun e -> e.ie_matches <> []) c.Compose.init_entries)
      (Catalog.all ())
  in
  checki "8 of 9 queries absorbed" 8 (List.length absorbed);
  checkb "Q3 is the exception" true
    (not (List.exists (fun q -> q.Ast.id = 3) absorbed));
  (* Q9 branch 0 (the DNS branch) stays unabsorbed. *)
  let q9 = compile (Catalog.q9 ()) in
  checkb "Q9 dns branch keeps its filter" true
    (q9.Compose.init_entries.(0).ie_matches = [])

let test_opt1_disabled_keeps_filters () =
  let c = compile ~options:baseline (q1 ()) in
  checkb "baseline keeps match-all init" true
    (Array.for_all (fun e -> e.ie_matches = []) c.Compose.init_entries)

(* ---------------- Opt.2 / Opt.3 ---------------- *)

let test_opt2_reduces_modules () =
  List.iter
    (fun q ->
      let base = compile ~options:baseline q in
      let o2 = compile ~options:{ default with opt3 = false } q in
      checkb
        (Printf.sprintf "Q%d: opt1+2 reduce modules" q.Ast.id)
        true
        (o2.Compose.stats.Compose.modules < base.Compose.stats.Compose.modules_naive))
    (Catalog.all ())

let test_opt3_reduces_stages () =
  List.iter
    (fun q ->
      let o2 = compile ~options:{ default with opt3 = false } q in
      let o3 = compile q in
      checkb
        (Printf.sprintf "Q%d: vertical composition shrinks stages" q.Ast.id)
        true
        (o3.Compose.stats.Compose.stages < o2.Compose.stats.Compose.stages))
    (Catalog.all ())

let test_all_queries_fit_tofino_stages () =
  (* Paper: <= 10 stages for all nine queries.  Our composition enforces
     strict stage ordering between R modules sharing the global result
     (a correctness constraint the paper does not spell out), costing one
     to two extra stages on the sketch-heavy queries — still within
     Tofino's 12-stage pipeline. *)
  List.iter
    (fun q ->
      let c = compile q in
      checkb (Printf.sprintf "Q%d fits a 12-stage pipeline" q.Ast.id) true
        (c.Compose.stats.Compose.stages <= 12))
    (Catalog.all ())

let test_paper_reduction_bounds () =
  List.iter
    (fun q ->
      let base = compile ~options:baseline q in
      let opt = compile q in
      let sr =
        1.0
        -. float_of_int opt.Compose.stats.Compose.stages
           /. float_of_int base.Compose.stats.Compose.stages_naive
      in
      (* Paper: >69.7%. Q3 lands at 69.4% here because of the strict
         R-ordering constraint (see test_all_queries_fit_tofino_stages). *)
      checkb (Printf.sprintf "Q%d stage reduction > 65%%" q.Ast.id) true (sr > 0.65);
      let mr =
        1.0
        -. float_of_int opt.Compose.stats.Compose.modules_shared
           /. float_of_int base.Compose.stats.Compose.modules_naive
      in
      (* Paper: >42.4%. Q9 keeps its dns.qr front filter (newton_init
         cannot absorb it), so it lands lower; see EXPERIMENTS.md. *)
      let bound = if q.Ast.id = 9 then 0.30 else 0.424 in
      checkb (Printf.sprintf "Q%d module reduction > %.0f%%" q.Ast.id (100. *. bound))
        true (mr > bound))
    (Catalog.all ())

(* Stage-assignment invariants (the dependency constraints of Fig. 4). *)
let test_stage_assignment_invariants () =
  List.iter
    (fun q ->
      let c = compile q in
      Array.iter
        (fun slots ->
          (* (stage, kind, meta) unique per branch *)
          let seen = Hashtbl.create 32 in
          List.iter
            (fun s ->
              let cell = (s.stage, s.kind, s.meta) in
              checkb "one table per (stage,kind,set)" false (Hashtbl.mem seen cell);
              Hashtbl.add seen cell ())
            slots;
          (* within a suite, stages strictly increase *)
          let by_suite = Hashtbl.create 16 in
          List.iter
            (fun s ->
              let k = (s.prim, s.suite) in
              let prev = Option.value (Hashtbl.find_opt by_suite k) ~default:(-1) in
              checkb "suite chain strictly increasing" true (s.stage > prev);
              Hashtbl.replace by_suite k s.stage)
            slots;
          (* all stages assigned *)
          List.iter (fun s -> checkb "assigned" true (s.stage >= 0)) slots)
        c.Compose.branches)
    (Catalog.all ())

let test_modules_shared_le_modules () =
  List.iter
    (fun q ->
      let c = compile q in
      checkb "sharing never increases modules" true
        (c.Compose.stats.Compose.modules_shared <= c.Compose.stats.Compose.modules))
    (Catalog.all ())

let test_rules_count () =
  let c = compile (q1 ()) in
  checki "rules = modules + init entries"
    (c.Compose.stats.Compose.modules + Array.length c.Compose.init_entries)
    c.Compose.stats.Compose.rules

let test_resource_usage_positive () =
  let r = Compose.resource_usage (compile (q1 ())) in
  checkb "uses sram" true (r.Newton_dataplane.Resource.sram > 0.0);
  checkb "uses vliw" true (r.Newton_dataplane.Resource.vliw > 0.0)

(* qcheck: compilation invariants hold across option combinations. *)
let qcheck_options_invariants =
  QCheck.Test.make ~count:100 ~name:"compiler: invariants across options"
    QCheck.(
      pair (int_range 1 9)
        (triple bool bool bool))
    (fun (qid, (o1, o2, o3)) ->
      let options = { default with opt1 = o1; opt2 = o2; opt3 = o3 } in
      let c = compile ~options (Catalog.by_id qid) in
      let s = c.Compose.stats in
      s.Compose.modules <= s.Compose.modules_naive
      && s.Compose.stages <= s.Compose.stages_naive
      && s.Compose.stages >= 1 && s.Compose.modules >= 1
      && s.Compose.modules_shared <= s.Compose.modules)

(* ---------------- Sonata cost model ---------------- *)

let test_sonata_tables_monotone_in_primitives () =
  checkb "q7 costs more than q1" true
    (Sonata_cost.logical_tables (Catalog.q7 ()) > Sonata_cost.logical_tables (q1 ()))

let test_sonata_concurrent_linear () =
  let q = Catalog.q4 () in
  checki "10 queries = 10x tables"
    (10 * Sonata_cost.logical_tables q)
    (Sonata_cost.concurrent_tables q 10)

let test_marple_stages_monotone () =
  checkb "q7 needs more Marple stages than q1" true
    (Marple_cost.pipeline_stages (Catalog.q7 ())
    > Marple_cost.pipeline_stages (q1 ()))

let test_marple_backing_store_spill () =
  Alcotest.(check (float 1e-9)) "no spill when keys fit" 0.0
    (Marple_cost.backing_store_spill ~on_chip_slots:1000 ~keys:500);
  checkb "spill grows past capacity" true
    (Marple_cost.backing_store_spill ~on_chip_slots:1000 ~keys:100_000
    > Marple_cost.backing_store_spill ~on_chip_slots:1000 ~keys:10_000);
  Alcotest.(check (float 1e-9)) "spill saturates at 1" 1.0
    (Marple_cost.backing_store_spill ~on_chip_slots:10 ~keys:10_000_000);
  checkb "marple also reloads on updates" true Marple_cost.update_requires_reload

let test_newton_beats_static_compilers_on_stages () =
  List.iter
    (fun q ->
      let c = compile q in
      checkb (Printf.sprintf "Q%d: Newton stages <= Marple estimate" q.Ast.id) true
        (c.Compose.stats.Compose.stages <= Marple_cost.pipeline_stages q + 2))
    (Catalog.all ())

let test_newton_beats_sonata_stages () =
  List.iter
    (fun q ->
      let c = compile q in
      checkb (Printf.sprintf "Q%d: Newton stages <= Sonata estimate" q.Ast.id) true
        (c.Compose.stats.Compose.stages <= Sonata_cost.estimated_stages q))
    (Catalog.all ())

let suite =
  [
    ("filter decomposes to full suite", `Quick, test_filter_decomposes_to_full_suite);
    ("map only K used", `Quick, test_map_only_k_used);
    ("threshold filter R only", `Quick, test_threshold_filter_r_only);
    ("reduce has depth suites", `Quick, test_reduce_has_depth_suites);
    ("distinct uses bloom rows", `Quick, test_distinct_uses_bloom_rows);
    ("combine query reads sibling", `Quick, test_combine_query_reads_sibling);
    ("min combine mirrors both branches", `Quick, test_min_combine_mirrors_both_branches);
    ("sub combine single side", `Quick, test_sub_combine_single_side);
    ("every query has reporting R", `Quick, test_every_query_has_reporting_r);
    ("pack_values deterministic", `Quick, test_pack_values_deterministic);
    ("opt1 absorbs front filter", `Quick, test_opt1_absorbs_front_filter);
    ("opt1 eight of nine", `Quick, test_opt1_eight_of_nine);
    ("opt1 disabled keeps filters", `Quick, test_opt1_disabled_keeps_filters);
    ("opt2 reduces modules", `Quick, test_opt2_reduces_modules);
    ("opt3 reduces stages", `Quick, test_opt3_reduces_stages);
    ("all queries fit tofino stages", `Quick, test_all_queries_fit_tofino_stages);
    ("paper reduction bounds", `Quick, test_paper_reduction_bounds);
    ("stage assignment invariants", `Quick, test_stage_assignment_invariants);
    ("modules_shared <= modules", `Quick, test_modules_shared_le_modules);
    ("rules count", `Quick, test_rules_count);
    ("resource usage positive", `Quick, test_resource_usage_positive);
    QCheck_alcotest.to_alcotest qcheck_options_invariants;
    ("marple stages monotone", `Quick, test_marple_stages_monotone);
    ("marple backing store spill", `Quick, test_marple_backing_store_spill);
    ("newton vs static compilers", `Quick, test_newton_beats_static_compilers_on_stages);
    ("sonata tables monotone", `Quick, test_sonata_tables_monotone_in_primitives);
    ("sonata concurrent linear", `Quick, test_sonata_concurrent_linear);
    ("newton beats sonata stages", `Quick, test_newton_beats_sonata_stages);
  ]
