(** Tests for partial deployment (§7): legacy switches carry no Newton
    rules, the placement DFS passes through them, and the SP header only
    survives between adjacent Newton-enabled switches. *)

open Newton_network
open Newton_controller
open Newton_packet

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let compile = Newton_compiler.Compose.compile
let q1 th = compile (Newton_query.Catalog.q1 ~th ())

let syn ~ts ~src ~dst =
  Packet.make ~ts ~src_ip:src ~dst_ip:dst ~proto:6 ~src_port:1000 ~dst_port:80
    ~tcp_flags:Field.Tcp_flag.syn ()

(* ---------------- placement with disabled switches ---------------- *)

let test_placement_skips_disabled () =
  let topo = Topo.linear 3 in
  let compiled = q1 10 in
  let stages = compiled.Newton_compiler.Compose.stats.Newton_compiler.Compose.stages in
  let per = (stages + 1) / 2 in
  (* Middle switch is legacy: the two enabled switches take depths 1,2
     regardless of the hole. *)
  let p =
    Placement.place ~enabled:(fun s -> s <> 1) ~edge_switches:[ 0 ]
      ~stages_per_switch:per ~topo compiled
  in
  checki "M = 2" 2 (Placement.num_slices p);
  Alcotest.(check (list int)) "sw0 = depth 1" [ 1 ] (Placement.slices_of p 0);
  Alcotest.(check (list int)) "legacy sw1 gets nothing" [] (Placement.slices_of p 1);
  Alcotest.(check (list int)) "sw2 = depth 2 (hole skipped)" [ 2 ] (Placement.slices_of p 2)

let test_placement_disabled_edge () =
  let topo = Topo.linear 3 in
  let p =
    Placement.place ~enabled:(fun s -> s <> 0) ~edge_switches:[ 0 ]
      ~stages_per_switch:12 ~topo (q1 10)
  in
  (* The edge switch itself is legacy: depth 1 lands on its neighbor. *)
  Alcotest.(check (list int)) "sw0 empty" [] (Placement.slices_of p 0);
  Alcotest.(check (list int)) "sw1 = depth 1" [ 1 ] (Placement.slices_of p 1)

(* ---------------- deployment & execution ---------------- *)

let test_deploy_skips_legacy_switch () =
  let topo = Topo.linear 3 in
  let ctl = Deploy.create topo in
  Deploy.set_enabled ctl 1 false;
  checkb "flag readable" false (Deploy.is_enabled ctl 1);
  let _ = Deploy.deploy ~stages_per_switch:12 ctl (q1 10) in
  checki "no instances on the legacy switch" 0
    (List.length (Newton_runtime.Engine.instances (Deploy.engine ctl 1)));
  checkb "enabled switches have rules" true
    (Newton_runtime.Engine.instances (Deploy.engine ctl 0) <> [])

let test_sole_mode_respects_enabled () =
  let topo = Topo.linear 3 in
  let ctl = Deploy.create topo in
  Deploy.set_enabled ctl 1 false;
  let _ = Deploy.deploy ~mode:`Sole ctl (q1 10) in
  checki "legacy switch skipped in sole mode" 0
    (List.length (Newton_runtime.Engine.instances (Deploy.engine ctl 1)))

let test_monitoring_works_through_legacy_gap () =
  (* M=1: the full query sits on enabled switches; a legacy middle
     switch is simply passed through. *)
  let topo = Topo.linear 3 in
  let ctl = Deploy.create topo in
  Deploy.set_enabled ctl 1 false;
  let _ = Deploy.deploy ~stages_per_switch:12 ctl (q1 10) in
  let src = Topo.num_switches topo in
  for i = 1 to 20 do
    Deploy.process_packet ctl ~src_host:src ~dst_host:(src + 1) (syn ~ts:0.01 ~src:i ~dst:7)
  done;
  checkb "flood detected despite the legacy hop" true (Deploy.message_count ctl >= 1)

let test_cqe_adjacent_enabled_switches () =
  (* Chain of 4 with all enabled, sliced 2-ways over switches 0,1: the
     remaining hops are pass-through; detection works. *)
  let topo = Topo.linear 4 in
  let ctl = Deploy.create topo in
  let compiled = q1 10 in
  let stages = compiled.Newton_compiler.Compose.stats.Newton_compiler.Compose.stages in
  let _ = Deploy.deploy ~stages_per_switch:((stages + 1) / 2) ctl compiled in
  let src = Topo.num_switches topo in
  for i = 1 to 20 do
    Deploy.process_packet ctl ~src_host:src ~dst_host:(src + 1) (syn ~ts:0.01 ~src:i ~dst:7)
  done;
  checki "one report" 1 (Deploy.message_count ctl)

let test_cqe_sp_lost_across_legacy_gap () =
  (* Chain 0-1-2 with switch 1 legacy and a 2-way CQE slice: the SP
     snapshot cannot cross the legacy switch, so the second slice
     restarts from an empty context — the count never reaches the
     threshold (the paper's "CQE only works in adjacent Newton-enabled
     switches"). *)
  let topo = Topo.linear 3 in
  let ctl = Deploy.create topo in
  Deploy.set_enabled ctl 1 false;
  let compiled = q1 10 in
  let stages = compiled.Newton_compiler.Compose.stats.Newton_compiler.Compose.stages in
  let _ = Deploy.deploy ~stages_per_switch:((stages + 1) / 2) ctl compiled in
  let src = Topo.num_switches topo in
  for i = 1 to 20 do
    Deploy.process_packet ctl ~src_host:src ~dst_host:(src + 1) (syn ~ts:0.01 ~src:i ~dst:7)
  done;
  (* The deployment still installs; reports are lost because the global
     result restarts at the gap. Contrast with the adjacent case above. *)
  checki "snapshot loss suppresses the report" 0 (Deploy.message_count ctl)

let test_sp_bytes_only_between_adjacent () =
  let topo = Topo.linear 3 in
  let ctl = Deploy.create topo in
  Deploy.set_enabled ctl 1 false;
  let compiled = q1 10 in
  let stages = compiled.Newton_compiler.Compose.stats.Newton_compiler.Compose.stages in
  let _ = Deploy.deploy ~stages_per_switch:((stages + 1) / 2) ctl compiled in
  let src = Topo.num_switches topo in
  Deploy.process_packet ctl ~src_host:src ~dst_host:(src + 1) (syn ~ts:0.01 ~src:1 ~dst:7);
  checkb "no SP bytes across the gap" true (Deploy.sp_overhead_ratio ctl = 0.0)

let suite =
  [
    ("placement skips disabled", `Quick, test_placement_skips_disabled);
    ("placement disabled edge", `Quick, test_placement_disabled_edge);
    ("deploy skips legacy switch", `Quick, test_deploy_skips_legacy_switch);
    ("sole mode respects enabled", `Quick, test_sole_mode_respects_enabled);
    ("monitoring works through legacy gap", `Quick, test_monitoring_works_through_legacy_gap);
    ("cqe adjacent enabled switches", `Quick, test_cqe_adjacent_enabled_switches);
    ("cqe sp lost across legacy gap", `Quick, test_cqe_sp_lost_across_legacy_gap);
    ("sp bytes only between adjacent", `Quick, test_sp_bytes_only_between_adjacent);
  ]
