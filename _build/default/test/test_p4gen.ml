(** Tests for the P4 program generator and the runtime rule generator. *)

open Newton_p4gen

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let count_occurrences s sub =
  let m = String.length sub in
  let rec go i acc =
    if i + m > String.length s then acc
    else if String.sub s i m = sub then go (i + m) (acc + 1)
    else go (i + 1) acc
  in
  if m = 0 then 0 else go 0 0

let small_layout = { Emit.stages = 3; registers = 1024; rules_per_table = 64 }

(* ---------------- program emission ---------------- *)

let test_program_structure () =
  let p = Emit.program ~layout:small_layout () in
  List.iter
    (fun piece -> checkb ("contains " ^ piece) true (contains p piece))
    [ "#include <v1model.p4>"; "header sp_t"; "struct metadata_t";
      "parser NewtonParser"; "control NewtonIngress"; "table newton_init";
      "table newton_fin"; "V1Switch"; "NewtonDeparser" ]

let test_program_table_counts () =
  let p = Emit.program ~layout:small_layout () in
  (* 3 stages x 2 sets x 4 kinds module tables *)
  checki "K tables" 6 (count_occurrences p "table newton_k_s");
  checki "H tables" 6 (count_occurrences p "table newton_h_s");
  checki "S tables" 6 (count_occurrences p "table newton_s_s");
  checki "R tables" 6 (count_occurrences p "table newton_r_s");
  (* one register array per stage and set *)
  checki "register arrays" 6 (count_occurrences p "register<bit<32>>(1024) newton_reg_")

let test_program_sp_layout () =
  let p = Emit.program ~layout:small_layout () in
  (* The SP header mirrors Sp_header: 16+24+16+24+16 bits = 12 bytes. *)
  checkb "hash fields 16 bits" true (contains p "bit<16> hash1;");
  checkb "state fields 24 bits" true (contains p "bit<24> state1;");
  checkb "parser initializes result sets" true
    (contains p "meta.state1_result = (bit<32>) hdr.sp.state1;");
  checkb "fin emits on the SP ethertype" true (contains p "0x88B5")

let test_program_applies_all_modules () =
  let p = Emit.program ~layout:small_layout () in
  (* every module table is applied exactly once in the control flow *)
  checki "apply calls" 24 (count_occurrences p "_m0.apply()" + count_occurrences p "_m1.apply()")

let test_program_scales_with_layout () =
  let small = Emit.program ~layout:small_layout () in
  let large = Emit.program ~layout:{ small_layout with Emit.stages = 12 } () in
  checkb "more stages emit more code" true (String.length large > String.length small)

let test_program_rejects_bad_layout () =
  checkb "rejects zero stages" true
    (try ignore (Emit.program ~layout:{ small_layout with Emit.stages = 0 } ()); false
     with Invalid_argument _ -> true)

let test_table_names_stable () =
  Alcotest.(check string) "table name scheme" "newton_s_s4_m1"
    (Emit.table_name ~stage:4 ~kind:Newton_dataplane.Module_cost.S ~set:1)

(* ---------------- rule generation ---------------- *)

let compile = Newton_compiler.Compose.compile

let test_rules_count_matches_compiled () =
  List.iter
    (fun q ->
      let c = compile q in
      let entries = Rules.entries c in
      checki
        (Printf.sprintf "Q%d: one entry per rule" q.Newton_query.Ast.id)
        c.Newton_compiler.Compose.stats.Newton_compiler.Compose.rules
        (List.length entries))
    (Newton_query.Catalog.all ())

let test_rules_reference_emitted_tables () =
  let layout = { Emit.default_layout with Emit.stages = 12 } in
  let p = Emit.program ~layout () in
  let c = compile (Newton_query.Catalog.q4 ()) in
  List.iter
    (fun (e : Rules.entry) ->
      checkb ("emitted program declares " ^ e.Rules.table) true
        (contains p ("table " ^ e.Rules.table)))
    (Rules.entries c)

let test_rules_init_entry_shape () =
  let c = compile (Newton_query.Catalog.q1 ()) in
  match List.filter (fun (e : Rules.entry) -> e.Rules.table = "newton_init") (Rules.entries c) with
  | [ e ] ->
      Alcotest.(check string) "action" "set_class" e.Rules.action;
      checkb "ternary matches on proto+flags" true (List.length e.Rules.matches = 2)
  | l -> Alcotest.failf "expected 1 init entry, got %d" (List.length l)

let test_rules_k_masks () =
  let c = compile (Newton_query.Catalog.q1 ()) in
  let k_entries =
    List.filter
      (fun (e : Rules.entry) -> contains e.Rules.action "_select")
      (Rules.entries c)
  in
  checkb "K entries exist" true (k_entries <> []);
  List.iter
    (fun (e : Rules.entry) ->
      (* Q1 selects dip: its mask parameter is full, others zero. *)
      let full =
        List.filter (fun (_, v) -> v = "0xffffffff") e.Rules.params
      in
      checki "exactly one selected field" 1 (List.length full))
    k_entries

let test_rules_threshold_becomes_range () =
  let c = compile (Newton_query.Catalog.q1 ~th:30 ()) in
  let has_range =
    List.exists
      (fun (e : Rules.entry) ->
        List.exists
          (function Rules.M_range ("meta.global_result", 31, _) -> true | _ -> false)
          e.Rules.matches)
      (Rules.entries c)
  in
  checkb "count > 30 compiles to a [31, max] range match" true has_range

let test_rules_distinct_classes_per_branch () =
  let c = compile (Newton_query.Catalog.q6 ()) in
  let inits =
    List.filter (fun (e : Rules.entry) -> e.Rules.table = "newton_init") (Rules.entries c)
  in
  let classes =
    List.filter_map
      (fun (e : Rules.entry) -> List.assoc_opt "class_id" e.Rules.params)
      inits
    |> List.sort_uniq compare
  in
  checki "two branches, two traffic classes" 2 (List.length classes)

let test_rules_json_renders () =
  let c = compile (Newton_query.Catalog.q4 ()) in
  let json = Rules.to_json (Rules.entries c) in
  checkb "json array" true (String.length json > 2 && json.[0] = '[');
  checkb "mentions the classifier" true (contains json "newton_init");
  checkb "no unescaped quotes in fields" true (not (contains json "\"\"\""));
  (* entry count = line count of entries *)
  checki "one line per entry"
    (List.length (Rules.entries c))
    (count_occurrences json "{\"table\"")

let test_rules_fit_emitted_table_sizes () =
  (* Per-table entry counts of a full catalog deployment stay within the
     emitted table sizes. *)
  let per_table = Hashtbl.create 64 in
  List.iteri
    (fun i q ->
      List.iter
        (fun (e : Rules.entry) ->
          Hashtbl.replace per_table e.Rules.table
            (1 + Option.value (Hashtbl.find_opt per_table e.Rules.table) ~default:0))
        (Rules.entries ~class_id:(1 + (i * 10)) (compile q)))
    (Newton_query.Catalog.all ());
  let cap = Emit.default_layout.Emit.rules_per_table in
  Hashtbl.iter
    (fun table n ->
      let limit = if table = "newton_init" then 4 * cap else cap in
      checkb (table ^ " within size") true (n <= limit))
    per_table

let suite =
  [
    ("program structure", `Quick, test_program_structure);
    ("program table counts", `Quick, test_program_table_counts);
    ("program sp layout", `Quick, test_program_sp_layout);
    ("program applies all modules", `Quick, test_program_applies_all_modules);
    ("program scales with layout", `Quick, test_program_scales_with_layout);
    ("program rejects bad layout", `Quick, test_program_rejects_bad_layout);
    ("table names stable", `Quick, test_table_names_stable);
    ("rules count matches compiled", `Quick, test_rules_count_matches_compiled);
    ("rules reference emitted tables", `Quick, test_rules_reference_emitted_tables);
    ("rules init entry shape", `Quick, test_rules_init_entry_shape);
    ("rules k masks", `Quick, test_rules_k_masks);
    ("rules threshold becomes range", `Quick, test_rules_threshold_becomes_range);
    ("rules distinct classes per branch", `Quick, test_rules_distinct_classes_per_branch);
    ("rules json renders", `Quick, test_rules_json_renders);
    ("rules fit emitted table sizes", `Quick, test_rules_fit_emitted_table_sizes);
  ]
