(** Tests for Newton_packet: fields, packets, 5-tuples, SP header. *)

open Newton_packet

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* ---------------- Field ---------------- *)

let test_field_index_roundtrip () =
  List.iter
    (fun f -> checkb "of_index . index = id" true (Field.of_index (Field.index f) = f))
    Field.all

let test_field_indices_unique () =
  let idxs = List.map Field.index Field.all in
  checki "unique indices" (List.length idxs) (List.length (List.sort_uniq compare idxs))

let test_field_count () = checki "count matches all" (List.length Field.all) Field.count

let test_field_string_roundtrip () =
  List.iter
    (fun f -> checkb "of_string . to_string = id" true (Field.of_string (Field.to_string f) = f))
    Field.all

let test_field_of_string_rejects () =
  Alcotest.check_raises "unknown field"
    (Invalid_argument "Field.of_string: unknown field bogus") (fun () ->
      ignore (Field.of_string "bogus"))

let test_field_widths () =
  checki "ip width" 32 (Field.width Field.Src_ip);
  checki "port width" 16 (Field.width Field.Dst_port);
  checki "flags width" 8 (Field.width Field.Tcp_flags);
  checki "qr width" 1 (Field.width Field.Dns_qr)

let test_field_full_mask () =
  checki "8-bit mask" 0xff (Field.full_mask Field.Proto);
  checki "16-bit mask" 0xffff (Field.full_mask Field.Src_port);
  checki "32-bit mask" 0xffffffff (Field.full_mask Field.Src_ip)

let test_tcp_flag_constants () =
  checki "syn" 2 Field.Tcp_flag.syn;
  checki "syn|ack" 0x12 Field.Tcp_flag.syn_ack;
  checki "fin" 1 Field.Tcp_flag.fin

(* ---------------- Packet ---------------- *)

let test_packet_get_set () =
  let p = Packet.create () in
  Packet.set p Field.Src_ip 0xC0A80101;
  checki "set/get" 0xC0A80101 (Packet.get p Field.Src_ip)

let test_packet_set_masks_to_width () =
  let p = Packet.create () in
  Packet.set p Field.Proto 0x1ff;
  checki "proto truncated to 8 bits" 0xff (Packet.get p Field.Proto)

let test_packet_make_defaults () =
  let p = Packet.make () in
  checki "default src" 0 (Packet.get p Field.Src_ip);
  checki "default len" 64 (Packet.get p Field.Pkt_len);
  checki "default ttl" 64 (Packet.get p Field.Ttl)

let test_packet_flags_helpers () =
  let syn = Packet.make ~proto:6 ~tcp_flags:Field.Tcp_flag.syn () in
  checkb "is_syn" true (Packet.is_syn syn);
  checkb "not syn_ack" false (Packet.is_syn_ack syn);
  let synack = Packet.make ~proto:6 ~tcp_flags:Field.Tcp_flag.syn_ack () in
  checkb "is_syn_ack" true (Packet.is_syn_ack synack);
  checkb "syn_ack is not pure syn" false (Packet.is_syn synack);
  let udp = Packet.make ~proto:17 ~tcp_flags:Field.Tcp_flag.syn () in
  checkb "udp is never syn" false (Packet.is_syn udp)

let test_packet_copy_isolated () =
  let p = Packet.make ~src_ip:1 () in
  let q = Packet.copy p in
  Packet.set q Field.Src_ip 2;
  checki "original unchanged" 1 (Packet.get p Field.Src_ip)

let test_packet_with_ts () =
  let p = Packet.make ~ts:1.0 () in
  let q = Packet.with_ts p 2.0 in
  checkb "new ts" true (Packet.ts q = 2.0);
  checkb "old ts intact" true (Packet.ts p = 1.0)

let test_ip_string_roundtrip () =
  let ip = Packet.ip_of_string "10.200.0.1" in
  checks "roundtrip" "10.200.0.1" (Packet.ip_to_string ip);
  checki "value" 0x0AC80001 ip

let test_ip_of_string_rejects () =
  List.iter
    (fun s ->
      checkb ("rejects " ^ s) true
        (try
           ignore (Packet.ip_of_string s);
           false
         with Invalid_argument _ -> true))
    [ "1.2.3"; "256.0.0.1"; "a.b.c.d"; "1.2.3.4.5"; "" ]

(* ---------------- Fivetuple ---------------- *)

let mk_pkt () =
  Packet.make ~src_ip:0x0A000001 ~dst_ip:0x0A000002 ~proto:6 ~src_port:1234
    ~dst_port:80 ()

let test_fivetuple_of_packet () =
  let ft = Fivetuple.of_packet (mk_pkt ()) in
  checki "src" 0x0A000001 ft.Fivetuple.src_ip;
  checki "dport" 80 ft.Fivetuple.dst_port

let test_fivetuple_reverse_involution () =
  let ft = Fivetuple.of_packet (mk_pkt ()) in
  checkb "reverse.reverse = id" true
    (Fivetuple.equal ft (Fivetuple.reverse (Fivetuple.reverse ft)));
  checkb "reverse differs" false (Fivetuple.equal ft (Fivetuple.reverse ft))

let test_fivetuple_hash_consistent () =
  let a = Fivetuple.of_packet (mk_pkt ()) in
  let b = Fivetuple.of_packet (mk_pkt ()) in
  checki "equal tuples hash equal" (Fivetuple.hash a) (Fivetuple.hash b)

let test_fivetuple_table () =
  let tbl = Fivetuple.Table.create 16 in
  let ft = Fivetuple.of_packet (mk_pkt ()) in
  Fivetuple.Table.replace tbl ft 42;
  checki "table lookup" 42 (Fivetuple.Table.find tbl (Fivetuple.of_packet (mk_pkt ())))

(* ---------------- Sp_header ---------------- *)

let test_sp_size () = checki "12 bytes" 12 Sp_header.size_bytes

let test_sp_roundtrip () =
  let sp = Sp_header.make ~hash1:4095 ~state1:123456 ~hash2:77 ~state2:9999 ~global:31000 in
  checkb "roundtrip" true (Sp_header.equal sp (Sp_header.decode (Sp_header.encode sp)))

let test_sp_empty_roundtrip () =
  checkb "empty roundtrip" true
    (Sp_header.equal Sp_header.empty (Sp_header.decode (Sp_header.encode Sp_header.empty)))

let test_sp_saturation () =
  let sp = Sp_header.make ~hash1:0x12345 ~state1:0x2000000 ~hash2:0 ~state2:0 ~global:(-5) in
  let sp' = Sp_header.decode (Sp_header.encode sp) in
  checki "hash saturates to 16 bits" 0xffff sp'.Sp_header.hash1;
  checki "state saturates to 24 bits" 0xffffff sp'.Sp_header.state1;
  checki "negative clamps to 0" 0 sp'.Sp_header.global

let test_sp_decode_rejects_wrong_size () =
  Alcotest.check_raises "11 bytes"
    (Invalid_argument "Sp_header.decode: expected 12 bytes, got 11") (fun () ->
      ignore (Sp_header.decode (Bytes.create 11)))

let test_sp_overhead_ratio () =
  checkb "<1% at 1500B" true (Sp_header.overhead_ratio ~pkt_len:1500 < 0.01);
  Alcotest.check_raises "rejects 0" (Invalid_argument "Sp_header.overhead_ratio")
    (fun () -> ignore (Sp_header.overhead_ratio ~pkt_len:0))

(* qcheck: SP round-trip over the full in-range domain. *)
let qcheck_sp_roundtrip =
  QCheck.Test.make ~count:500 ~name:"sp_header roundtrip (in-range values)"
    QCheck.(
      quad (int_bound 0xffff) (int_bound 0xffffff) (int_bound 0xffff)
        (int_bound 0xffffff))
    (fun (h1, s1, h2, s2) ->
      let sp = Sp_header.make ~hash1:h1 ~state1:s1 ~hash2:h2 ~state2:s2 ~global:(h1 lxor h2) in
      Sp_header.equal sp (Sp_header.decode (Sp_header.encode sp)))

let suite =
  [
    ("field index roundtrip", `Quick, test_field_index_roundtrip);
    ("field indices unique", `Quick, test_field_indices_unique);
    ("field count", `Quick, test_field_count);
    ("field string roundtrip", `Quick, test_field_string_roundtrip);
    ("field of_string rejects", `Quick, test_field_of_string_rejects);
    ("field widths", `Quick, test_field_widths);
    ("field full mask", `Quick, test_field_full_mask);
    ("tcp flag constants", `Quick, test_tcp_flag_constants);
    ("packet get/set", `Quick, test_packet_get_set);
    ("packet set masks to width", `Quick, test_packet_set_masks_to_width);
    ("packet make defaults", `Quick, test_packet_make_defaults);
    ("packet flags helpers", `Quick, test_packet_flags_helpers);
    ("packet copy isolated", `Quick, test_packet_copy_isolated);
    ("packet with_ts", `Quick, test_packet_with_ts);
    ("ip string roundtrip", `Quick, test_ip_string_roundtrip);
    ("ip of_string rejects", `Quick, test_ip_of_string_rejects);
    ("fivetuple of_packet", `Quick, test_fivetuple_of_packet);
    ("fivetuple reverse involution", `Quick, test_fivetuple_reverse_involution);
    ("fivetuple hash consistent", `Quick, test_fivetuple_hash_consistent);
    ("fivetuple table", `Quick, test_fivetuple_table);
    ("sp size", `Quick, test_sp_size);
    ("sp roundtrip", `Quick, test_sp_roundtrip);
    ("sp empty roundtrip", `Quick, test_sp_empty_roundtrip);
    ("sp saturation", `Quick, test_sp_saturation);
    ("sp decode rejects wrong size", `Quick, test_sp_decode_rejects_wrong_size);
    ("sp overhead ratio", `Quick, test_sp_overhead_ratio);
    QCheck_alcotest.to_alcotest qcheck_sp_roundtrip;
  ]
