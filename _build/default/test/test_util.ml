(** Tests for Newton_util: PRNG, Zipf sampling, statistics, table
    formatting. *)

open Newton_util

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)

(* ---------------- Prng ---------------- *)

let test_prng_deterministic () =
  let a = Prng.of_int 42 and b = Prng.of_int 42 in
  for _ = 1 to 100 do
    checki "same seed, same stream" (Prng.next_int a) (Prng.next_int b)
  done

let test_prng_seeds_differ () =
  let a = Prng.of_int 1 and b = Prng.of_int 2 in
  let va = List.init 10 (fun _ -> Prng.next_int a) in
  let vb = List.init 10 (fun _ -> Prng.next_int b) in
  checkb "different seeds diverge" true (va <> vb)

let test_prng_int_bounds () =
  let rng = Prng.of_int 7 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 17 in
    checkb "in [0,17)" true (v >= 0 && v < 17)
  done

let test_prng_int_rejects_nonpositive () =
  let rng = Prng.of_int 7 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int rng 0))

let test_prng_float_range () =
  let rng = Prng.of_int 9 in
  for _ = 1 to 1000 do
    let v = Prng.float rng in
    checkb "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_prng_float_mean () =
  let rng = Prng.of_int 11 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Prng.float rng
  done;
  let mean = !sum /. float_of_int n in
  checkb "mean near 0.5" true (abs_float (mean -. 0.5) < 0.02)

let test_prng_split_independent () =
  let a = Prng.of_int 5 in
  let b = Prng.split a in
  let va = List.init 10 (fun _ -> Prng.next_int a) in
  let vb = List.init 10 (fun _ -> Prng.next_int b) in
  checkb "split stream differs" true (va <> vb)

let test_prng_bernoulli_extremes () =
  let rng = Prng.of_int 3 in
  for _ = 1 to 100 do
    checkb "p=1 always true" true (Prng.bernoulli rng 1.0);
    checkb "p=0 always false" false (Prng.bernoulli rng 0.0)
  done

let test_prng_exponential_mean () =
  let rng = Prng.of_int 13 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Prng.exponential rng 2.0
  done;
  checkb "mean near 1/lambda" true (abs_float ((!sum /. float_of_int n) -. 0.5) < 0.02)

let test_prng_exponential_rejects () =
  let rng = Prng.of_int 13 in
  Alcotest.check_raises "lambda 0"
    (Invalid_argument "Prng.exponential: lambda must be positive") (fun () ->
      ignore (Prng.exponential rng 0.0))

let test_prng_pareto_lower_bound () =
  let rng = Prng.of_int 17 in
  for _ = 1 to 1000 do
    checkb "pareto >= xm" true (Prng.pareto rng ~alpha:1.5 ~xm:3.0 >= 3.0)
  done

let test_prng_shuffle_permutation () =
  let rng = Prng.of_int 19 in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "same elements" (Array.init 50 Fun.id) sorted

let test_prng_choice () =
  let rng = Prng.of_int 23 in
  let arr = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    checkb "choice from array" true (Array.mem (Prng.choice rng arr) arr)
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Prng.choice: empty array")
    (fun () -> ignore (Prng.choice rng [||]))

let test_prng_geometric () =
  let rng = Prng.of_int 29 in
  checki "p=1 gives 0" 0 (Prng.geometric rng 1.0);
  for _ = 1 to 100 do
    checkb "non-negative" true (Prng.geometric rng 0.3 >= 0)
  done

(* ---------------- Zipf ---------------- *)

let test_zipf_range () =
  let z = Zipf.create ~n:100 ~exponent:1.0 in
  let rng = Prng.of_int 31 in
  for _ = 1 to 1000 do
    let r = Zipf.sample z rng in
    checkb "rank in [1,100]" true (r >= 1 && r <= 100)
  done

let test_zipf_pmf_sums_to_one () =
  let z = Zipf.create ~n:50 ~exponent:1.2 in
  let total = List.fold_left (fun acc r -> acc +. Zipf.pmf z r) 0.0 (List.init 50 (fun i -> i + 1)) in
  checkf "pmf sums to 1" 1.0 total

let test_zipf_skew () =
  let z = Zipf.create ~n:1000 ~exponent:1.0 in
  let rng = Prng.of_int 37 in
  let top = ref 0 and n = 20_000 in
  for _ = 1 to n do
    if Zipf.sample z rng <= 10 then incr top
  done;
  (* Top-10 ranks carry a large share under Zipf(1.0) over 1000 ranks. *)
  checkb "top-10 ranks dominate" true (float_of_int !top /. float_of_int n > 0.3)

let test_zipf_pmf_monotone () =
  let z = Zipf.create ~n:20 ~exponent:1.5 in
  for r = 1 to 19 do
    checkb "pmf decreasing" true (Zipf.pmf z r >= Zipf.pmf z (r + 1))
  done

let test_zipf_uniform_when_zero_exponent () =
  let z = Zipf.create ~n:10 ~exponent:0.0 in
  for r = 1 to 10 do
    checkb "uniform pmf" true (abs_float (Zipf.pmf z r -. 0.1) < 1e-9)
  done

let test_zipf_rejects_bad_args () =
  Alcotest.check_raises "n=0" (Invalid_argument "Zipf.create: n must be positive")
    (fun () -> ignore (Zipf.create ~n:0 ~exponent:1.0));
  Alcotest.check_raises "negative exponent"
    (Invalid_argument "Zipf.create: exponent must be >= 0") (fun () ->
      ignore (Zipf.create ~n:5 ~exponent:(-1.0)))

(* ---------------- Stats ---------------- *)

let test_stats_mean () =
  checkf "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  checkb "mean of empty is nan" true (Float.is_nan (Stats.mean []))

let test_stats_percentile () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  checkf "p0 = min" 1.0 (Stats.percentile 0.0 xs);
  checkf "p100 = max" 5.0 (Stats.percentile 100.0 xs);
  checkf "p50 = median" 3.0 (Stats.percentile 50.0 xs);
  checkf "p25 interpolates" 2.0 (Stats.percentile 25.0 xs)

let test_stats_median_unsorted () =
  checkf "median of unsorted" 3.0 (Stats.median [ 5.0; 1.0; 3.0; 2.0; 4.0 ])

let test_stats_stddev () =
  checkf "stddev of constant" 0.0 (Stats.stddev [ 4.0; 4.0; 4.0 ]);
  checkb "stddev positive" true (Stats.stddev [ 1.0; 5.0 ] > 0.0)

let test_stats_ecdf () =
  let e = Stats.ecdf [ 1.0; 1.0; 2.0 ] in
  check
    (Alcotest.list (Alcotest.pair (Alcotest.float 1e-9) (Alcotest.float 1e-9)))
    "ecdf points"
    [ (1.0, 2.0 /. 3.0); (2.0, 1.0) ]
    e

let test_stats_ratio () =
  checkf "ratio" 0.5 (Stats.ratio 1 2);
  checkf "zero denominator" 0.0 (Stats.ratio 5 0)

(* ---------------- Tablefmt ---------------- *)

let test_tablefmt_render () =
  let t = Tablefmt.create ~aligns:[ Tablefmt.Left; Tablefmt.Right ] [ "a"; "bb" ] in
  Tablefmt.add_row t [ "xx"; "1" ];
  let s = Tablefmt.render t in
  checkb "contains header" true (String.length s > 0);
  checkb "has three lines" true
    (List.length (String.split_on_char '\n' (String.trim s)) = 3)

let test_tablefmt_rejects_mismatch () =
  let t = Tablefmt.create [ "a"; "b" ] in
  Alcotest.check_raises "wrong arity" (Invalid_argument "Tablefmt.add_row: cell count mismatch")
    (fun () -> Tablefmt.add_row t [ "only-one" ])

let test_tablefmt_alignment () =
  let t = Tablefmt.create ~aligns:[ Tablefmt.Right ] [ "col" ] in
  Tablefmt.add_row t [ "7" ];
  let lines = String.split_on_char '\n' (String.trim (Tablefmt.render t)) in
  (* right-aligned single char under 3-wide header *)
  Alcotest.check Alcotest.string "right aligned" "  7" (List.nth lines 2)

let suite =
  [
    ("prng deterministic", `Quick, test_prng_deterministic);
    ("prng seeds differ", `Quick, test_prng_seeds_differ);
    ("prng int bounds", `Quick, test_prng_int_bounds);
    ("prng int rejects nonpositive", `Quick, test_prng_int_rejects_nonpositive);
    ("prng float range", `Quick, test_prng_float_range);
    ("prng float mean", `Quick, test_prng_float_mean);
    ("prng split independent", `Quick, test_prng_split_independent);
    ("prng bernoulli extremes", `Quick, test_prng_bernoulli_extremes);
    ("prng exponential mean", `Quick, test_prng_exponential_mean);
    ("prng exponential rejects", `Quick, test_prng_exponential_rejects);
    ("prng pareto lower bound", `Quick, test_prng_pareto_lower_bound);
    ("prng shuffle permutation", `Quick, test_prng_shuffle_permutation);
    ("prng choice", `Quick, test_prng_choice);
    ("prng geometric", `Quick, test_prng_geometric);
    ("zipf range", `Quick, test_zipf_range);
    ("zipf pmf sums to one", `Quick, test_zipf_pmf_sums_to_one);
    ("zipf skew", `Quick, test_zipf_skew);
    ("zipf pmf monotone", `Quick, test_zipf_pmf_monotone);
    ("zipf uniform at exponent 0", `Quick, test_zipf_uniform_when_zero_exponent);
    ("zipf rejects bad args", `Quick, test_zipf_rejects_bad_args);
    ("stats mean", `Quick, test_stats_mean);
    ("stats percentile", `Quick, test_stats_percentile);
    ("stats median unsorted", `Quick, test_stats_median_unsorted);
    ("stats stddev", `Quick, test_stats_stddev);
    ("stats ecdf", `Quick, test_stats_ecdf);
    ("stats ratio", `Quick, test_stats_ratio);
    ("tablefmt render", `Quick, test_tablefmt_render);
    ("tablefmt rejects mismatch", `Quick, test_tablefmt_rejects_mismatch);
    ("tablefmt alignment", `Quick, test_tablefmt_alignment);
  ]
