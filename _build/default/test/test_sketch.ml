(** Tests for Newton_sketch: hashes, ALUs, register arrays, Bloom
    filters, Count-Min sketches, exact oracles. *)

open Newton_sketch

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ---------------- Hash ---------------- *)

let test_hash_deterministic () =
  let h = Hash.create ~seed:1 ~range:1024 in
  checki "same input same output" (Hash.apply h [| 1; 2; 3 |]) (Hash.apply h [| 1; 2; 3 |])

let test_hash_range () =
  let h = Hash.create ~seed:2 ~range:100 in
  for i = 0 to 999 do
    let v = Hash.apply h [| i; i * 7 |] in
    checkb "in range" true (v >= 0 && v < 100)
  done

let test_hash_seed_independence () =
  let h1 = Hash.create ~seed:1 ~range:1048576 in
  let h2 = Hash.create ~seed:2 ~range:1048576 in
  let collisions = ref 0 in
  for i = 0 to 999 do
    if Hash.apply h1 [| i |] = Hash.apply h2 [| i |] then incr collisions
  done;
  checkb "seeds behave independently" true (!collisions < 5)

let test_hash_spreads () =
  let h = Hash.create ~seed:3 ~range:4096 in
  let seen = Hashtbl.create 64 in
  for i = 0 to 999 do
    Hashtbl.replace seen (Hash.apply h [| i |]) ()
  done;
  checkb "well spread over 4096 buckets" true (Hashtbl.length seen > 850)

let test_hash_order_sensitive () =
  let h = Hash.create ~seed:4 ~range:(1 lsl 30) in
  checkb "key order matters" true (Hash.apply h [| 1; 2 |] <> Hash.apply h [| 2; 1 |])

let test_hash_rejects_bad_range () =
  Alcotest.check_raises "range 0" (Invalid_argument "Hash.create: range must be positive")
    (fun () -> ignore (Hash.create ~seed:0 ~range:0))

(* ---------------- Alu ---------------- *)

let test_alu_add () =
  let regs = [| 10 |] in
  checki "returns new value" 15 (Alu.exec (Alu.Add 5) regs 0);
  checki "register updated" 15 regs.(0)

let test_alu_or_returns_previous () =
  let regs = [| 0 |] in
  checki "prev was 0" 0 (Alu.exec (Alu.Or 1) regs 0);
  checki "now set" 1 regs.(0);
  checki "prev now 1" 1 (Alu.exec (Alu.Or 1) regs 0)

let test_alu_max () =
  let regs = [| 7 |] in
  checki "max keeps larger" 7 (Alu.exec (Alu.Max 3) regs 0);
  checki "max takes larger" 9 (Alu.exec (Alu.Max 9) regs 0)

let test_alu_read_write () =
  let regs = [| 42 |] in
  checki "read" 42 (Alu.exec Alu.Read regs 0);
  checki "write returns prev" 42 (Alu.exec (Alu.Write 5) regs 0);
  checki "write stores" 5 regs.(0)

(* ---------------- Register_array ---------------- *)

let test_reg_array_basic () =
  let a = Register_array.create 8 in
  checki "size" 8 (Register_array.size a);
  Register_array.set a 3 9;
  checki "get" 9 (Register_array.get a 3)

let test_reg_array_bounds () =
  let a = Register_array.create 4 in
  Alcotest.check_raises "get out of range"
    (Invalid_argument "Register_array.get: index out of range") (fun () ->
      ignore (Register_array.get a 4))

let test_reg_array_exec_counts_ops () =
  let a = Register_array.create 4 in
  ignore (Register_array.exec a (Alu.Add 1) 0);
  ignore (Register_array.exec a (Alu.Add 1) 1);
  checki "two ops" 2 (Register_array.ops a)

let test_reg_array_clear_and_occupancy () =
  let a = Register_array.create 8 in
  ignore (Register_array.exec a (Alu.Add 1) 2);
  ignore (Register_array.exec a (Alu.Add 1) 5);
  checki "occupancy 2" 2 (Register_array.occupancy a);
  Register_array.clear a;
  checki "occupancy 0 after clear" 0 (Register_array.occupancy a)

let test_reg_array_sram_bytes () =
  checki "4096 regs = 16KB" 16384 (Register_array.sram_bytes (Register_array.create 4096))

let test_reg_array_rejects_nonpositive () =
  Alcotest.check_raises "size 0"
    (Invalid_argument "Register_array.create: size must be positive") (fun () ->
      ignore (Register_array.create 0))

(* ---------------- Bloom ---------------- *)

let test_bloom_no_false_negatives () =
  let b = Bloom.create ~width:1024 ~depth:3 ~seed:5 in
  for i = 0 to 99 do
    ignore (Bloom.test_and_set b [| i |])
  done;
  for i = 0 to 99 do
    checkb "inserted key found" true (Bloom.mem b [| i |])
  done

let test_bloom_test_and_set_semantics () =
  let b = Bloom.create ~width:1024 ~depth:3 ~seed:5 in
  checkb "first insert: absent" false (Bloom.test_and_set b [| 42 |]);
  checkb "second insert: present" true (Bloom.test_and_set b [| 42 |])

let test_bloom_clear () =
  let b = Bloom.create ~width:64 ~depth:2 ~seed:6 in
  ignore (Bloom.test_and_set b [| 1 |]);
  Bloom.clear b;
  checkb "cleared" false (Bloom.mem b [| 1 |]);
  checki "inserted reset" 0 (Bloom.inserted b)

let test_bloom_fpr_low_when_sparse () =
  let b = Bloom.create ~width:8192 ~depth:3 ~seed:7 in
  for i = 0 to 99 do
    ignore (Bloom.test_and_set b [| i |])
  done;
  let fp = ref 0 in
  for i = 1000 to 1999 do
    if Bloom.mem b [| i |] then incr fp
  done;
  checkb "few false positives when sparse" true (!fp < 10);
  checkb "expected fpr small" true (Bloom.expected_fpr b < 0.01)

let qcheck_bloom_no_false_negatives =
  QCheck.Test.make ~count:100 ~name:"bloom: no false negatives"
    QCheck.(list_of_size Gen.(int_range 1 200) (int_bound 1_000_000))
    (fun keys ->
      let b = Bloom.create ~width:4096 ~depth:3 ~seed:11 in
      List.iter (fun k -> ignore (Bloom.test_and_set b [| k |])) keys;
      List.for_all (fun k -> Bloom.mem b [| k |]) keys)

(* ---------------- Count_min ---------------- *)

let test_cm_exact_when_sparse () =
  let cm = Count_min.create ~width:4096 ~depth:3 ~seed:8 in
  for _ = 1 to 5 do
    ignore (Count_min.add cm [| 7 |] 1)
  done;
  checki "exact count when uncontended" 5 (Count_min.estimate cm [| 7 |])

let test_cm_add_returns_estimate () =
  let cm = Count_min.create ~width:4096 ~depth:2 ~seed:9 in
  checki "first add returns 1" 1 (Count_min.add cm [| 3 |] 1);
  checki "second add returns 2" 2 (Count_min.add cm [| 3 |] 1)

let test_cm_weighted_add () =
  let cm = Count_min.create ~width:4096 ~depth:2 ~seed:10 in
  ignore (Count_min.add cm [| 1 |] 100);
  checki "weighted" 100 (Count_min.estimate cm [| 1 |])

let test_cm_never_underestimates () =
  let cm = Count_min.create ~width:64 ~depth:2 ~seed:11 in
  let truth = Hashtbl.create 16 in
  let rng = Newton_util.Prng.of_int 3 in
  for _ = 1 to 2000 do
    let k = Newton_util.Prng.int rng 300 in
    Hashtbl.replace truth k (1 + Option.value (Hashtbl.find_opt truth k) ~default:0);
    ignore (Count_min.add cm [| k |] 1)
  done;
  Hashtbl.iter
    (fun k v -> checkb "estimate >= truth" true (Count_min.estimate cm [| k |] >= v))
    truth

let test_cm_clear () =
  let cm = Count_min.create ~width:64 ~depth:2 ~seed:12 in
  ignore (Count_min.add cm [| 1 |] 5);
  Count_min.clear cm;
  checki "cleared" 0 (Count_min.estimate cm [| 1 |]);
  checki "total reset" 0 (Count_min.total cm)

let test_cm_unknown_key_zero () =
  let cm = Count_min.create ~width:4096 ~depth:3 ~seed:13 in
  checki "empty sketch estimates 0" 0 (Count_min.estimate cm [| 999 |])

let qcheck_cm_overestimate_only =
  QCheck.Test.make ~count:50 ~name:"count-min: never underestimates"
    QCheck.(list_of_size Gen.(int_range 1 500) (int_bound 100))
    (fun keys ->
      let cm = Count_min.create ~width:128 ~depth:3 ~seed:17 in
      List.iter (fun k -> ignore (Count_min.add cm [| k |] 1)) keys;
      let truth = Hashtbl.create 16 in
      List.iter
        (fun k ->
          Hashtbl.replace truth k (1 + Option.value (Hashtbl.find_opt truth k) ~default:0))
        keys;
      Hashtbl.fold
        (fun k v acc -> acc && Count_min.estimate cm [| k |] >= v)
        truth true)

(* ---------------- Exact ---------------- *)

let test_exact_counter () =
  let c = Exact.Counter.create () in
  checki "add returns running total" 1 (Exact.Counter.add c [| 1; 2 |] 1);
  checki "accumulates" 4 (Exact.Counter.add c [| 1; 2 |] 3);
  checki "separate keys isolated" 0 (Exact.Counter.count c [| 9 |]);
  checki "cardinality" 1 (Exact.Counter.cardinality c)

let test_exact_counter_over_threshold () =
  let c = Exact.Counter.create () in
  ignore (Exact.Counter.add c [| 1 |] 10);
  ignore (Exact.Counter.add c [| 2 |] 3);
  let over = Exact.Counter.over_threshold c 5 in
  checki "one key over 5" 1 (List.length over)

let test_exact_distinct () =
  let d = Exact.Distinct.create () in
  checkb "first time false" false (Exact.Distinct.test_and_set d [| 5 |]);
  checkb "second time true" true (Exact.Distinct.test_and_set d [| 5 |]);
  checki "cardinality" 1 (Exact.Distinct.cardinality d);
  Exact.Distinct.clear d;
  checkb "cleared" false (Exact.Distinct.mem d [| 5 |])

let suite =
  [
    ("hash deterministic", `Quick, test_hash_deterministic);
    ("hash range", `Quick, test_hash_range);
    ("hash seed independence", `Quick, test_hash_seed_independence);
    ("hash spreads", `Quick, test_hash_spreads);
    ("hash order sensitive", `Quick, test_hash_order_sensitive);
    ("hash rejects bad range", `Quick, test_hash_rejects_bad_range);
    ("alu add", `Quick, test_alu_add);
    ("alu or returns previous", `Quick, test_alu_or_returns_previous);
    ("alu max", `Quick, test_alu_max);
    ("alu read/write", `Quick, test_alu_read_write);
    ("register array basic", `Quick, test_reg_array_basic);
    ("register array bounds", `Quick, test_reg_array_bounds);
    ("register array op count", `Quick, test_reg_array_exec_counts_ops);
    ("register array clear/occupancy", `Quick, test_reg_array_clear_and_occupancy);
    ("register array sram bytes", `Quick, test_reg_array_sram_bytes);
    ("register array rejects nonpositive", `Quick, test_reg_array_rejects_nonpositive);
    ("bloom no false negatives", `Quick, test_bloom_no_false_negatives);
    ("bloom test_and_set semantics", `Quick, test_bloom_test_and_set_semantics);
    ("bloom clear", `Quick, test_bloom_clear);
    ("bloom fpr low when sparse", `Quick, test_bloom_fpr_low_when_sparse);
    QCheck_alcotest.to_alcotest qcheck_bloom_no_false_negatives;
    ("cm exact when sparse", `Quick, test_cm_exact_when_sparse);
    ("cm add returns estimate", `Quick, test_cm_add_returns_estimate);
    ("cm weighted add", `Quick, test_cm_weighted_add);
    ("cm never underestimates", `Quick, test_cm_never_underestimates);
    ("cm clear", `Quick, test_cm_clear);
    ("cm unknown key zero", `Quick, test_cm_unknown_key_zero);
    QCheck_alcotest.to_alcotest qcheck_cm_overestimate_only;
    ("exact counter", `Quick, test_exact_counter);
    ("exact counter over_threshold", `Quick, test_exact_counter_over_threshold);
    ("exact distinct", `Quick, test_exact_distinct);
  ]
