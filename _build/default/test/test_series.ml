(** Tests for the report-analysis series (per-window aggregation). *)

open Newton_query

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let r ?(q = 1) ?(w = 0) ?(keys = [| 7 |]) () =
  Report.make ~query_id:q ~window:w ~keys ~value:1 ()

let test_empty () =
  let s = Series.of_reports [] in
  checki "no reports" 0 (Series.total s);
  checkb "no span" true (Series.window_span s = None);
  Alcotest.(check (list int)) "no queries" [] (Series.query_ids s);
  Alcotest.(check string) "empty sparkline" "" (Series.sparkline s ~query_id:1)

let test_counts_and_span () =
  let s =
    Series.of_reports [ r ~w:2 (); r ~w:2 (); r ~w:5 (); r ~q:2 ~w:3 () ]
  in
  checki "total" 4 (Series.total s);
  checki "count q1 w2" 2 (Series.count s ~query_id:1 ~window:2);
  checki "count q1 w3" 0 (Series.count s ~query_id:1 ~window:3);
  checkb "global span" true (Series.window_span s = Some (2, 5));
  checkb "q1 active span" true (Series.active_span s ~query_id:1 = Some (2, 5));
  checkb "q2 active span" true (Series.active_span s ~query_id:2 = Some (3, 3));
  checkb "absent query" true (Series.active_span s ~query_id:9 = None)

let test_query_ids_sorted () =
  let s = Series.of_reports [ r ~q:5 (); r ~q:1 (); r ~q:5 () ] in
  Alcotest.(check (list int)) "sorted unique" [ 1; 5 ] (Series.query_ids s)

let test_top_keys () =
  let s =
    Series.of_reports
      [ r ~keys:[| 1 |] (); r ~keys:[| 1 |] (); r ~keys:[| 1 |] ~w:1 ();
        r ~keys:[| 2 |] (); r ~keys:[| 3 |] () ]
  in
  (match Series.top_keys s ~query_id:1 ~n:2 with
  | [ (k1, 3); (_, 1) ] -> Alcotest.(check (array int)) "hottest key" [| 1 |] k1
  | l -> Alcotest.failf "unexpected top-keys shape (%d entries)" (List.length l));
  checki "n bounds the list" 1 (List.length (Series.top_keys s ~query_id:1 ~n:1))

let test_sparkline_shape () =
  let s =
    Series.of_reports
      [ r ~w:0 (); r ~w:0 (); r ~w:0 (); r ~w:0 (); r ~w:2 () ]
  in
  let sl = Series.sparkline s ~query_id:1 in
  checki "one char per window in span" 3 (String.length sl);
  checkb "quiet window is blank" true (sl.[1] = ' ');
  let density c =
    let rec go i = if Series.spark_chars.(i) = c then i else go (i + 1) in
    go 0
  in
  checkb "peak window is densest" true (density sl.[0] > density sl.[2])

let test_summary_mentions_queries () =
  let s = Series.of_reports [ r (); r ~q:4 ~w:1 () ] in
  let text = Series.summary s in
  checkb "mentions Q1" true
    (String.length text > 0
    && List.exists
         (fun line -> String.length line >= 2 && String.sub line 0 2 = "Q1")
         (String.split_on_char '\n' text))

let test_end_to_end_with_device () =
  let trace =
    Newton_trace.Gen.generate ~attacks:Newton_trace.Attack.default_suite ~seed:8
      (Newton_trace.Profile.with_flows Newton_trace.Profile.caida_like 800)
  in
  let d = Newton_core.Newton.Device.create () in
  let _ = Newton_core.Newton.Device.add_query d (Catalog.q1 ()) in
  Newton_core.Newton.Device.process_trace d trace;
  let s = Series.of_reports (Newton_core.Newton.Device.reports d) in
  checkb "series covers the attack" true (Series.active_span s ~query_id:1 <> None);
  let top = Series.top_keys s ~query_id:1 ~n:5 in
  checkb "flood victim among the top keys" true
    (List.exists (fun (k, _) -> k.(0) = Newton_trace.Attack.host_of 1) top)

let suite =
  [
    ("empty", `Quick, test_empty);
    ("counts and span", `Quick, test_counts_and_span);
    ("query ids sorted", `Quick, test_query_ids_sorted);
    ("top keys", `Quick, test_top_keys);
    ("sparkline shape", `Quick, test_sparkline_shape);
    ("summary mentions queries", `Quick, test_summary_mentions_queries);
    ("end to end with device", `Quick, test_end_to_end_with_device);
  ]
