(** Tests for Newton_dataplane: resources, tables, stages, switch and
    reconfiguration models. *)

open Newton_dataplane

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)

(* ---------------- Resource ---------------- *)

let test_resource_add_sub () =
  let a = Resource.make ~sram:2.0 ~vliw:3.0 () in
  let b = Resource.make ~sram:1.0 ~tcam:4.0 () in
  let s = Resource.add a b in
  checkf "sram adds" 3.0 s.Resource.sram;
  checkf "tcam adds" 4.0 s.Resource.tcam;
  let d = Resource.sub s b in
  checkf "sub recovers" 2.0 d.Resource.sram

let test_resource_scale () =
  let a = Resource.make ~salu:2.0 () in
  checkf "scaled" 1.0 (Resource.scale a 0.5).Resource.salu

let test_resource_fits () =
  let budget = Resource.make ~sram:10.0 ~vliw:10.0 () in
  checkb "fits" true (Resource.fits (Resource.make ~sram:10.0 () ) budget);
  checkb "overflow" false (Resource.fits (Resource.make ~sram:10.1 ()) budget)

let test_resource_sum () =
  let parts = [ Resource.make ~sram:1.0 (); Resource.make ~sram:2.0 () ] in
  checkf "sum" 3.0 (Resource.sum parts).Resource.sram

let test_resource_utilization () =
  let u = Resource.utilization (Resource.make ~sram:20.0 ()) Resource.stage_budget in
  checkf "sram util" 0.25 u.Resource.sram;
  checkf "zero-budget maps to zero" 0.0
    (Resource.utilization (Resource.make ~sram:1.0 ()) (Resource.make ())).Resource.sram

(* ---------------- Module costs ---------------- *)

let test_suite_fits_stage () =
  checkb "compact suite fits one stage" true
    (Resource.fits Module_cost.suite Resource.stage_budget)

let test_naive_is_quarter_suite () =
  checkf "naive per-stage = suite/4" (Module_cost.suite.Resource.sram /. 4.0)
    Module_cost.naive_per_stage.Resource.sram

let test_state_bank_scales_with_registers () =
  let small = Module_cost.state_bank ~registers:256 () in
  let large = Module_cost.state_bank ~registers:65536 () in
  checkb "more registers, more SRAM" true (large.Resource.sram > small.Resource.sram)

let test_amortized () =
  let full = Module_cost.cost Module_cost.K in
  let am = Module_cost.amortized Module_cost.K in
  checkf "1/256 of module" (full.Resource.vliw /. 256.0) am.Resource.vliw

let test_primitive_cost_monotone_in_suites () =
  let one = Module_cost.primitive_cost ~suites:1 in
  let three = Module_cost.primitive_cost ~suites:3 in
  checkf "3x suites = 3x cost" (one.Resource.crossbar *. 3.0) three.Resource.crossbar

(* ---------------- Table ---------------- *)

let test_table_exact_match () =
  let t = Table.create ~name:"t" ~key_width:1 () in
  let _ = Table.add t ~priority:1 ~matches:[| Table.Exact 5 |] "hit" in
  Alcotest.(check (option string)) "exact hit" (Some "hit") (Table.lookup t [| 5 |]);
  Alcotest.(check (option string)) "exact miss" None (Table.lookup t [| 6 |])

let test_table_ternary_match () =
  let t = Table.create ~name:"t" ~key_width:1 () in
  let _ =
    Table.add t ~priority:1 ~matches:[| Table.Ternary { value = 0x12; mask = 0xF0 } |] "hi"
  in
  Alcotest.(check (option string)) "matches masked bits" (Some "hi") (Table.lookup t [| 0x1F |]);
  Alcotest.(check (option string)) "mismatch" None (Table.lookup t [| 0x2F |])

let test_table_range_match () =
  let t = Table.create ~name:"t" ~key_width:1 () in
  let _ = Table.add t ~priority:1 ~matches:[| Table.Range { lo = 10; hi = 20 } |] "in" in
  Alcotest.(check (option string)) "inside" (Some "in") (Table.lookup t [| 15 |]);
  Alcotest.(check (option string)) "boundary lo" (Some "in") (Table.lookup t [| 10 |]);
  Alcotest.(check (option string)) "boundary hi" (Some "in") (Table.lookup t [| 20 |]);
  Alcotest.(check (option string)) "outside" None (Table.lookup t [| 21 |])

let test_table_any_match () =
  let t = Table.create ~name:"t" ~key_width:2 () in
  let _ = Table.add t ~priority:1 ~matches:[| Table.Any; Table.Exact 1 |] "x" in
  Alcotest.(check (option string)) "wildcard first key" (Some "x") (Table.lookup t [| 999; 1 |])

let test_table_priority_order () =
  let t = Table.create ~name:"t" ~key_width:1 () in
  let _ = Table.add t ~priority:1 ~matches:[| Table.Any |] "low" in
  let _ = Table.add t ~priority:10 ~matches:[| Table.Exact 5 |] "high" in
  Alcotest.(check (option string)) "higher priority wins" (Some "high") (Table.lookup t [| 5 |]);
  Alcotest.(check (option string)) "fallback" (Some "low") (Table.lookup t [| 7 |])

let test_table_remove () =
  let t = Table.create ~name:"t" ~key_width:1 () in
  let id = Table.add t ~priority:1 ~matches:[| Table.Exact 1 |] "a" in
  checkb "removed" true (Table.remove t id);
  checkb "second removal fails" false (Table.remove t id);
  Alcotest.(check (option string)) "gone" None (Table.lookup t [| 1 |])

let test_table_capacity () =
  let t = Table.create ~capacity:2 ~name:"t" ~key_width:1 () in
  let _ = Table.add t ~priority:1 ~matches:[| Table.Exact 1 |] "a" in
  let _ = Table.add t ~priority:1 ~matches:[| Table.Exact 2 |] "b" in
  Alcotest.check_raises "table full" (Table.Table_full "t") (fun () ->
      ignore (Table.add t ~priority:1 ~matches:[| Table.Exact 3 |] "c"))

let test_table_key_width_validation () =
  let t = Table.create ~name:"t" ~key_width:2 () in
  checkb "add rejects wrong arity" true
    (try
       ignore (Table.add t ~priority:1 ~matches:[| Table.Any |] "x");
       false
     with Invalid_argument _ -> true);
  checkb "lookup rejects wrong arity" true
    (try
       ignore (Table.lookup t [| 1 |]);
       false
     with Invalid_argument _ -> true)

let test_table_find_ids () =
  let t = Table.create ~name:"t" ~key_width:1 () in
  let a = Table.add t ~priority:1 ~matches:[| Table.Exact 1 |] 10 in
  let _ = Table.add t ~priority:1 ~matches:[| Table.Exact 2 |] 20 in
  Alcotest.(check (list int)) "finds by predicate" [ a ] (Table.find_ids t (fun v -> v = 10))

let test_table_counters () =
  let t = Table.create ~name:"t" ~key_width:1 () in
  let _ = Table.add t ~priority:1 ~matches:[| Table.Exact 1 |] "a" in
  ignore (Table.lookup t [| 1 |]);
  ignore (Table.lookup t [| 2 |]);
  checki "lookups" 2 (Table.lookups t);
  checki "hits" 1 (Table.hits t)

(* ---------------- Stage ---------------- *)

let test_stage_place_unplace () =
  let s = Stage.create 0 in
  Stage.place s ~name:"K" (Resource.make ~sram:4.0 ());
  checkf "used tracked" 4.0 (Stage.used s).Resource.sram;
  checkb "unplace" true (Stage.unplace s ~name:"K");
  checkf "freed" 0.0 (Stage.used s).Resource.sram;
  checkb "unplace unknown" false (Stage.unplace s ~name:"Z")

let test_stage_overflow () =
  let s = Stage.create ~budget:(Resource.make ~sram:1.0 ()) 3 in
  Alcotest.check_raises "stage full"
    (Stage.Stage_full { stage = 3; component = "big" }) (fun () ->
      Stage.place s ~name:"big" (Resource.make ~sram:2.0 ()))

(* ---------------- Switch & Reconfig ---------------- *)

let test_switch_structure () =
  let sw = Switch.create ~id:1 () in
  checki "12 stages by default" 12 (Switch.num_stages sw);
  checki "id" 1 (Switch.id sw)

let test_switch_rule_ops_latency () =
  let sw = Switch.create ~id:0 () in
  let lat = Switch.install_rules sw ~count:20 in
  checkb "positive latency" true (lat > 0.0);
  checkb "rule-update never interrupts: ms scale" true (lat < 0.05);
  checki "rules tracked" 20 (Switch.monitor_rules sw);
  let _ = Switch.remove_rules sw ~count:20 in
  checki "rules freed" 0 (Switch.monitor_rules sw)

let test_switch_install_scales_with_rules () =
  let sw = Switch.create ~id:0 () in
  let l1 = Switch.install_rules sw ~count:5 in
  let l2 = Switch.install_rules sw ~count:200 in
  checkb "more rules, more latency" true (l2 > l1)

let test_switch_full_reload_outage () =
  let sw = Switch.create ~id:0 ~fwd_entries:6000 () in
  let outage = Switch.full_reload ~offered_pps:1e6 sw in
  checkb "seconds-scale outage" true (outage > 5.0 && outage < 10.0);
  checkb "packets dropped" true (Switch.dropped_during_outage sw > 4_000_000);
  checkb "outage accounted" true (Switch.outage_time sw = outage)

let test_reload_linear_in_entries () =
  let o1 = Reconfig.reload_outage ~fwd_entries:10_000 () in
  let o2 = Reconfig.reload_outage ~fwd_entries:60_000 () in
  checkf "linear growth" (Reconfig.reload_per_entry *. 50_000.0) (o2 -. o1);
  checkb "paper scale at 60K (~0.5 min)" true (o2 > 25.0 && o2 < 35.0)

let test_install_latency_calibration () =
  (* Fig. 11: a ~11-rule query (Q1) installs in ~5 ms, and the largest
     (~48 rules) stays under 20 ms. *)
  let rng = Newton_util.Prng.of_int 1 in
  let q1 = Reconfig.install_latency rng ~rules:11 in
  checkb "Q1-scale ~5ms" true (q1 > 0.003 && q1 < 0.009);
  let big = Reconfig.install_latency rng ~rules:48 in
  checkb "largest under 20ms" true (big < 0.020)

let test_switch_placement_resources () =
  let sw = Switch.create ~id:0 () in
  Switch.place sw ~stage:0 ~name:"suite" Module_cost.suite;
  checkb "fits" true (Resource.fits (Switch.total_used sw) (Switch.total_budget sw));
  checkb "can place another" true (Switch.can_place sw ~stage:0 Module_cost.key_selection)

let suite =
  [
    ("resource add/sub", `Quick, test_resource_add_sub);
    ("resource scale", `Quick, test_resource_scale);
    ("resource fits", `Quick, test_resource_fits);
    ("resource sum", `Quick, test_resource_sum);
    ("resource utilization", `Quick, test_resource_utilization);
    ("module suite fits a stage", `Quick, test_suite_fits_stage);
    ("naive per-stage is quarter suite", `Quick, test_naive_is_quarter_suite);
    ("state bank scales with registers", `Quick, test_state_bank_scales_with_registers);
    ("amortized module cost", `Quick, test_amortized);
    ("primitive cost monotone", `Quick, test_primitive_cost_monotone_in_suites);
    ("table exact match", `Quick, test_table_exact_match);
    ("table ternary match", `Quick, test_table_ternary_match);
    ("table range match", `Quick, test_table_range_match);
    ("table any match", `Quick, test_table_any_match);
    ("table priority order", `Quick, test_table_priority_order);
    ("table remove", `Quick, test_table_remove);
    ("table capacity", `Quick, test_table_capacity);
    ("table key width validation", `Quick, test_table_key_width_validation);
    ("table find_ids", `Quick, test_table_find_ids);
    ("table counters", `Quick, test_table_counters);
    ("stage place/unplace", `Quick, test_stage_place_unplace);
    ("stage overflow", `Quick, test_stage_overflow);
    ("switch structure", `Quick, test_switch_structure);
    ("switch rule ops latency", `Quick, test_switch_rule_ops_latency);
    ("switch install scales with rules", `Quick, test_switch_install_scales_with_rules);
    ("switch full reload outage", `Quick, test_switch_full_reload_outage);
    ("reload linear in entries", `Quick, test_reload_linear_in_entries);
    ("install latency calibration", `Quick, test_install_latency_calibration);
    ("switch placement resources", `Quick, test_switch_placement_resources);
  ]
